package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"botgrid/internal/checkpoint"
)

// Snapshot file layout: 8-byte magic "BGSNAP1\n", uint64 LE LSN (the last
// journal record the snapshot covers, echoing the filename), uint32 LE
// payload length, uint32 LE CRC32-IEEE, then the JSON payload — a State.
// Snapshots are written to a temp file, fsynced and renamed into place, so
// a crash mid-snapshot leaves either the old set or a complete new file;
// a torn temp file never carries the .snap name.

const snapMagic = "BGSNAP1\n"

func snapName(lsn uint64) string {
	return fmt.Sprintf("%020d.snap", lsn)
}

func parseSnapName(name string) (uint64, bool) {
	base, ok := strings.CutSuffix(name, ".snap")
	if !ok || len(base) != 20 {
		return 0, false
	}
	n, err := strconv.ParseUint(base, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// listSnapshots returns the snapshot LSNs in dir, ascending.
func listSnapshots(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var lsns []uint64
	for _, e := range ents {
		if lsn, ok := parseSnapName(e.Name()); ok {
			lsns = append(lsns, lsn)
		}
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] < lsns[j] })
	return lsns, nil
}

func encodeSnapshot(lsn uint64, st *State) ([]byte, error) {
	payload, err := json.Marshal(st)
	if err != nil {
		return nil, fmt.Errorf("journal: marshal snapshot: %w", err)
	}
	buf := make([]byte, 0, len(snapMagic)+16+len(payload))
	buf = append(buf, snapMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, lsn)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, crcTable))
	return append(buf, payload...), nil
}

// EncodeSnapshot renders st as a complete snapshot file image covering
// everything up to and including lsn — the exact bytes WriteSnapshot puts
// on disk. The replication layer ships these images verbatim to followers.
func EncodeSnapshot(lsn uint64, st *State) ([]byte, error) {
	return encodeSnapshot(lsn, st)
}

// DecodeSnapshot validates a snapshot image (the full file contents,
// header included) and returns the LSN it covers and the decoded state.
func DecodeSnapshot(data []byte) (uint64, *State, error) {
	hdr := len(snapMagic) + 16
	if len(data) < hdr || string(data[:len(snapMagic)]) != snapMagic {
		return 0, nil, fmt.Errorf("journal: bad snapshot header")
	}
	lsn := binary.LittleEndian.Uint64(data[len(snapMagic):])
	length := int(binary.LittleEndian.Uint32(data[len(snapMagic)+8:]))
	sum := binary.LittleEndian.Uint32(data[len(snapMagic)+12:])
	if len(data)-hdr != length {
		return 0, nil, fmt.Errorf("journal: snapshot payload %d bytes, header says %d", len(data)-hdr, length)
	}
	payload := data[hdr:]
	if crc32.Checksum(payload, crcTable) != sum {
		return 0, nil, fmt.Errorf("journal: snapshot checksum mismatch")
	}
	st := NewState()
	if err := json.Unmarshal(payload, st); err != nil {
		return 0, nil, fmt.Errorf("journal: snapshot: %w", err)
	}
	if st.Sched == nil {
		return 0, nil, fmt.Errorf("journal: snapshot missing scheduler state")
	}
	st.MaxTime = st.Time
	return lsn, st, nil
}

// readSnapshot loads and validates the snapshot at path.
func readSnapshot(path string, wantLSN uint64) (*State, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	base := filepath.Base(path)
	lsn, st, err := DecodeSnapshot(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", base, err)
	}
	if lsn != wantLSN {
		return nil, fmt.Errorf("journal: %s: header LSN %d != filename", base, lsn)
	}
	return st, nil
}

// InstallSnapshot replaces the journal directory's entire history with the
// given snapshot image: every log segment is deleted, the image becomes the
// sole recovery point, and the next Open resumes at LSN+1 with zero replay.
// The directory must not have an open Journal. Replication followers use it
// to adopt a leader's state wholesale — any locally diverged, never-acked
// log tail is discarded with the segments. The META epoch file is kept (or
// created for a brand-new follower directory). Returns the covered LSN.
//
// Crash ordering: segments are deleted before the new snapshot lands, so an
// interruption leaves either the old snapshots (state rewinds; the next
// leader session re-installs) or the complete new one — never a snapshot
// with stale segments replayed on top.
func InstallSnapshot(dir string, data []byte) (uint64, error) {
	lsn, _, err := DecodeSnapshot(data)
	if err != nil {
		return 0, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	if _, _, err := loadOrInitMeta(dir, time.Time{}); err != nil {
		return 0, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return 0, err
	}
	for _, first := range segs {
		if err := os.Remove(filepath.Join(dir, segName(first))); err != nil {
			return 0, err
		}
	}
	tmp := filepath.Join(dir, "snap.tmp")
	if err := writeFileSync(tmp, data); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapName(lsn))); err != nil {
		return 0, err
	}
	if err := syncDir(dir); err != nil {
		return 0, err
	}
	if snaps, err := listSnapshots(dir); err == nil {
		for _, s := range snaps {
			if s != lsn {
				os.Remove(filepath.Join(dir, snapName(s)))
			}
		}
	}
	return lsn, nil
}

// WriteSnapshot persists st as the snapshot covering everything up to and
// including lsn, then prunes: segments whose records all fall at or below
// lsn are deleted, as are all but the two most recent snapshots. Callers
// must serialize WriteSnapshot calls (the service's snapshot loop is the
// only caller while running; the final shutdown snapshot happens after the
// loop stops).
func (j *Journal) WriteSnapshot(lsn uint64, st *State) error {
	buf, err := encodeSnapshot(lsn, st)
	if err != nil {
		return err
	}
	start := time.Now()
	tmp := filepath.Join(j.dir, "snap.tmp")
	if err := writeFileSync(tmp, buf); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(j.dir, snapName(lsn))); err != nil {
		return err
	}
	if err := syncDir(j.dir); err != nil {
		return err
	}
	cost := time.Since(start)

	j.mu.Lock()
	j.snapshots++
	j.lastSnapLSN = lsn
	j.lastSnapAt = time.Now()
	j.snapAppends = j.appends
	// EWMA of the measured snapshot cost feeds Young's formula.
	c := cost.Seconds()
	if j.snapCost == 0 {
		j.snapCost = c
	} else {
		j.snapCost = 0.5*j.snapCost + 0.5*c
	}
	j.mu.Unlock()

	j.prune(lsn)
	return nil
}

// prune removes snapshots and fully-covered segments made obsolete by a
// snapshot at lsn. Best-effort: pruning failures leave extra files behind
// but never compromise recovery.
func (j *Journal) prune(lsn uint64) {
	if snaps, err := listSnapshots(j.dir); err == nil && len(snaps) > 2 {
		for _, s := range snaps[:len(snaps)-2] {
			os.Remove(filepath.Join(j.dir, snapName(s)))
		}
	}
	segs, err := listSegments(j.dir)
	if err != nil {
		return
	}
	// Segment i covers [segs[i], segs[i+1]-1]; it is obsolete once every
	// record is <= lsn. The last segment is open-ended and always kept.
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1]-1 <= lsn {
			os.Remove(filepath.Join(j.dir, segName(segs[i])))
		}
	}
}

// snapshotInterval returns the current Young's-formula snapshot interval
// from the measured snapshot cost and the configured MTBF, clamped to
// [minSnapInterval, maxSnapInterval].
func (j *Journal) snapshotInterval() time.Duration {
	j.mu.Lock()
	cost := j.snapCost
	j.mu.Unlock()
	if cost <= 0 {
		cost = 0.01 // pre-first-snapshot seed; replaced by measurement
	}
	tau := checkpoint.YoungInterval(cost, j.opts.SnapshotMTBF.Seconds())
	iv := time.Duration(tau * float64(time.Second))
	if iv < minSnapInterval {
		iv = minSnapInterval
	}
	if iv > maxSnapInterval {
		iv = maxSnapInterval
	}
	return iv
}

const (
	minSnapInterval = time.Second
	maxSnapInterval = 5 * time.Minute
	snapPollEvery   = 250 * time.Millisecond
)

// SnapshotLoop takes snapshots until stop is closed. The cadence follows
// Young's formula τ = sqrt(2·C·MTBF) with C the EWMA of measured snapshot
// cost and MTBF the configured expected crash interval — the same
// first-order optimum internal/checkpoint applies to task checkpoint
// intervals, here balancing snapshot work against replay length after a
// crash. Snapshots are skipped while the journal has no appends since the
// last one. capture must return a consistent (State, last-LSN) pair.
func (j *Journal) SnapshotLoop(stop <-chan struct{}, capture func() (*State, uint64)) {
	j.SnapshotLoopVia(stop, capture, j.WriteSnapshot)
}

// SnapshotLoopVia is SnapshotLoop with the persistence step delegated:
// write is called with each captured (lsn, state) pair in place of
// WriteSnapshot. The replication leader routes the loop through its own
// WriteSnapshot so the in-memory log tail it streams to catching-up
// followers is pruned in the same step that moves the snapshot anchor.
func (j *Journal) SnapshotLoopVia(stop <-chan struct{}, capture func() (*State, uint64), write func(lsn uint64, st *State) error) {
	tick := time.NewTicker(snapPollEvery)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		j.mu.Lock()
		due := j.appends > j.snapAppends
		last := j.lastSnapAt
		j.mu.Unlock()
		if !due || time.Since(last) < j.snapshotInterval() {
			continue
		}
		st, lsn := capture()
		if err := write(lsn, st); err != nil {
			j.noteError(err)
		}
	}
}

// writeFileSync writes data to path and fsyncs it.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so renames and creates within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
