package journal

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"botgrid/internal/core"
	"botgrid/internal/grid"
)

// testOptions returns journal options for a fresh temp directory.
func testOptions(t *testing.T) Options {
	t.Helper()
	return Options{
		Dir:        t.TempDir(),
		Fsync:      FsyncOff, // unit tests don't need real fsyncs
		BatchDelay: 100 * time.Microsecond,
	}
}

// script is a small but complete record sequence: one bag of two tasks on
// a one-machine grid, exercising dispatch, completion, failure-resubmission
// and both worker record kinds.
func script() []Record {
	return []Record{
		{Kind: KindBagSubmitted, Time: 1, Bag: 0, Granularity: 2000, Works: []float64{100, 200}},
		{Kind: KindWorkerRegistered, Time: 2, Machine: 0, Worker: "w0", Power: 2},
		{Kind: KindMachineUp, Time: 2, Machine: 0},
		{Kind: KindReplicaStarted, Time: 3, Bag: 0, Task: 0, Machine: 0, Seq: 1},
		{Kind: KindTaskCompleted, Time: 5, Bag: 0, Task: 0, Seq: 1},
		{Kind: KindReplicaStarted, Time: 6, Bag: 0, Task: 1, Machine: 0, Seq: 2},
		{Kind: KindMachineDown, Time: 7, Machine: 0},
		{Kind: KindWorkerSeen, Time: 8, Machine: 0},
	}
}

// checkScriptState verifies the State a full replay of script() must yield.
func checkScriptState(t *testing.T, st *State) {
	t.Helper()
	s := st.Sched
	if s.Submitted != 1 || s.NextBagID != 1 || s.TasksCompleted != 1 ||
		s.ReplicasStarted != 2 || s.Failures != 1 || s.Completed != 0 {
		t.Fatalf("scheduler counters = %+v", *s)
	}
	if len(s.Bags) != 1 || len(s.Replicas) != 0 {
		t.Fatalf("got %d bags, %d replicas", len(s.Bags), len(s.Replicas))
	}
	b := s.Bags[0]
	if b.FirstStart != 3 || !reflect.DeepEqual(b.Pending, []int{1}) {
		t.Fatalf("bag = %+v", b)
	}
	t0, t1 := b.Tasks[0], b.Tasks[1]
	if t0.State != core.TaskDone || t0.DoneAt != 5 || t0.FirstStart != 3 {
		t.Fatalf("task 0 = %+v", t0)
	}
	if t1.State != core.TaskPending || !t1.Restart || t1.Failures != 1 ||
		t1.IdleSince != 7 || t1.IdleAccum != 5 { // idle 1..6 before starting
		t.Fatalf("task 1 = %+v", t1)
	}
	if len(st.Workers) != 1 || st.Workers[0].ID != "w0" || st.Workers[0].LastSeen != 8 {
		t.Fatalf("workers = %+v", st.Workers)
	}
	if st.MaxTime != 8 {
		t.Fatalf("MaxTime = %v", st.MaxTime)
	}
}

// mustAppend appends recs and waits for the last to be durable.
func mustAppend(t *testing.T, j *Journal, recs []Record) uint64 {
	t.Helper()
	var last uint64
	for i := range recs {
		lsn, err := j.Append(&recs[i])
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		last = lsn
	}
	if err := j.WaitDurable(last); err != nil {
		t.Fatalf("WaitDurable(%d): %v", last, err)
	}
	return last
}

func TestRecordRoundTrip(t *testing.T) {
	recs := script()
	recs = append(recs, Record{Kind: KindReplicaStarted, Time: 9.5, Bag: 3,
		Task: 17, Machine: 42, Seq: 1 << 40, Restart: true})
	for i, want := range recs {
		payload := EncodeRecord(nil, &want)
		got, err := DecodeRecord(payload)
		if err != nil {
			t.Fatalf("record %d (%v): %v", i, want.Kind, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("record %d: got %+v want %+v", i, got, want)
		}
	}
}

func TestDecodeRecordRejects(t *testing.T) {
	valid := EncodeRecord(nil, &Record{Kind: KindBagCompleted, Time: 1, Bag: 3})
	cases := map[string][]byte{
		"empty":          {},
		"unknown kind":   {99, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		"kind zero":      {0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		"truncated time": {byte(KindBagCompleted), 1, 2},
		"truncated body": valid[:len(valid)-1],
		"trailing bytes": append(append([]byte{}, valid...), 7),
		"empty bag": EncodeRecord(nil, &Record{
			Kind: KindBagSubmitted, Time: 1, Bag: 0, Works: nil}),
		"nan time": EncodeRecord(nil, &Record{
			Kind: KindBagCompleted, Time: math.NaN(), Bag: 0}),
		"negative time": EncodeRecord(nil, &Record{
			Kind: KindBagCompleted, Time: -1, Bag: 0}),
	}
	for name, payload := range cases {
		if _, err := DecodeRecord(payload); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

func TestReplayScript(t *testing.T) {
	st := NewState()
	for _, r := range script() {
		if err := st.Apply(&r); err != nil {
			t.Fatalf("Apply(%v): %v", r.Kind, err)
		}
	}
	checkScriptState(t, st)

	// The replayed state must promote to a valid live scheduler. Machine 0
	// holds no replica, so it must be down at restore time.
	g := grid.NewCustom(grid.Config{}, []float64{2})
	g.Machines[0].ForceFail(8)
	s, err := core.RestoreLiveScheduler(&fixedClock{8}, g, core.NewPolicy(core.FCFSShare, nil),
		core.DefaultSchedConfig(), nil, st.Sched)
	if err != nil {
		t.Fatalf("RestoreLiveScheduler: %v", err)
	}
	if s.PendingTasks() != 1 || s.TasksCompleted() != 1 || s.ReplicaFailures() != 1 {
		t.Fatalf("restored: pending=%d done=%d failures=%d",
			s.PendingTasks(), s.TasksCompleted(), s.ReplicaFailures())
	}
}

type fixedClock struct{ t float64 }

func (c *fixedClock) Now() float64 { return c.t }

func TestReplayRejectsContradictions(t *testing.T) {
	base := func(n int) *State {
		st := NewState()
		for _, r := range script()[:n] {
			if err := st.Apply(&r); err != nil {
				t.Fatalf("setup Apply: %v", err)
			}
		}
		return st
	}
	cases := map[string]struct {
		n   int // records of script() to pre-apply
		rec Record
	}{
		"bag ID gap":         {0, Record{Kind: KindBagSubmitted, Time: 1, Bag: 5, Works: []float64{1}}},
		"unknown bag":        {1, Record{Kind: KindReplicaStarted, Time: 2, Bag: 9, Task: 0, Seq: 1}},
		"task out of range":  {1, Record{Kind: KindReplicaStarted, Time: 2, Bag: 0, Task: 7, Seq: 1}},
		"busy machine":       {4, Record{Kind: KindReplicaStarted, Time: 4, Bag: 0, Task: 1, Machine: 0, Seq: 2}},
		"complete pending":   {1, Record{Kind: KindTaskCompleted, Time: 2, Bag: 0, Task: 1, Seq: 1}},
		"bag not done":       {1, Record{Kind: KindBagCompleted, Time: 2, Bag: 0}},
		"unregistered seen":  {1, Record{Kind: KindWorkerSeen, Time: 2, Machine: 3}},
		"slot already taken": {2, Record{Kind: KindWorkerRegistered, Time: 3, Machine: 0, Worker: "other"}},
	}
	for name, c := range cases {
		if err := base(c.n).Apply(&c.rec); err == nil {
			t.Errorf("%s: Apply accepted a contradictory record", name)
		}
	}
}

func TestOpenFreshAppendReopen(t *testing.T) {
	opts := testOptions(t)
	opts.Epoch = time.Unix(1000, 0)
	j, rec, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Fresh || rec.LastLSN != 0 {
		t.Fatalf("fresh open: %+v", rec)
	}
	last := mustAppend(t, j, script())
	if last != uint64(len(script())) {
		t.Fatalf("last LSN = %d, want %d", last, len(script()))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(&Record{Kind: KindMachineUp, Time: 9}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}

	j2, rec2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if rec2.Fresh || rec2.Records != len(script()) || rec2.LastLSN != last ||
		rec2.TornBytes != 0 || !rec2.Epoch.Equal(opts.Epoch) {
		t.Fatalf("reopen: %+v", rec2)
	}
	checkScriptState(t, rec2.State)

	// New appends continue the LSN sequence.
	lsn, err := j2.Append(&Record{Kind: KindMachineUp, Time: 9, Machine: 0})
	if err != nil || lsn != last+1 {
		t.Fatalf("append after reopen: lsn=%d err=%v", lsn, err)
	}
}

func TestTornTailTruncated(t *testing.T) {
	opts := testOptions(t)
	j, _, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, script())
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: chop bytes off the final record.
	segs, err := listSegments(opts.Dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	path := filepath.Join(opts.Dir, segName(segs[len(segs)-1]))
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	j2, rec, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if rec.TornBytes == 0 {
		t.Fatal("torn tail not detected")
	}
	if rec.Records != len(script())-1 || rec.LastLSN != uint64(len(script())-1) {
		t.Fatalf("recovered %d records, last LSN %d", rec.Records, rec.LastLSN)
	}
	// The WorkerSeen record was lost; everything before it survived.
	if rec.State.MaxTime != 7 || rec.State.Workers[0].LastSeen != 2 {
		t.Fatalf("state after torn tail: MaxTime=%v workers=%+v",
			rec.State.MaxTime, rec.State.Workers)
	}
}

func TestTrailingGarbageTruncated(t *testing.T) {
	opts := testOptions(t)
	j, _, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, script())
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(opts.Dir)
	path := filepath.Join(opts.Dir, segName(segs[len(segs)-1]))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("garbage after the last frame")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, rec, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if rec.TornBytes == 0 || rec.Records != len(script()) {
		t.Fatalf("rec = %+v", rec)
	}
	checkScriptState(t, rec.State)
}

func TestMidLogCorruptionRefused(t *testing.T) {
	opts := testOptions(t)
	opts.SegmentBytes = 64   // rotate after every couple of records
	opts.Fsync = FsyncAlways // WaitDurable forces one flush per record
	j, _, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range script() {
		lsn, err := j.Append(&r)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.WaitDurable(lsn); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(opts.Dir)
	if len(segs) < 3 {
		t.Fatalf("wanted multiple segments, got %v", segs)
	}

	// Flip a payload byte in the first segment: corruption before the log
	// tail must refuse recovery rather than silently drop records.
	path := filepath.Join(opts.Dir, segName(segs[0]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(opts); err == nil {
		t.Fatal("Open accepted mid-log corruption")
	}
}

func TestSnapshotRecoveryAndPruning(t *testing.T) {
	opts := testOptions(t)
	opts.SegmentBytes = 64
	opts.Fsync = FsyncAlways // WaitDurable forces one flush per record
	j, _, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	recs := script()
	cut := 5 // snapshot covers recs[:cut]
	st := NewState()
	var snapLSN uint64
	for i := range recs {
		lsn, err := j.Append(&recs[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := j.WaitDurable(lsn); err != nil {
			t.Fatal(err)
		}
		if err := st.Apply(&recs[i]); err != nil {
			t.Fatal(err)
		}
		if i == cut-1 {
			st.Time = recs[i].Time
			snapLSN = lsn
			if err := j.WriteSnapshot(lsn, st); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, rec, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotLSN != snapLSN {
		t.Fatalf("recovered from snapshot %d, want %d", rec.SnapshotLSN, snapLSN)
	}
	if rec.Records != len(recs)-cut {
		t.Fatalf("replayed %d records, want %d", rec.Records, len(recs)-cut)
	}
	checkScriptState(t, rec.State)

	// A snapshot covering the whole log prunes every closed segment; only
	// the active one survives.
	extra := Record{Kind: KindMachineUp, Time: 9, Machine: 0}
	lsn, err := j2.Append(&extra)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.WaitDurable(lsn); err != nil {
		t.Fatal(err)
	}
	if err := st.Apply(&extra); err != nil {
		t.Fatal(err)
	}
	st.Time = 9
	if err := j2.WriteSnapshot(lsn, st); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(opts.Dir)
	if len(segs) != 1 {
		t.Fatalf("segments after full-coverage snapshot: %v", segs)
	}
	snaps, _ := listSnapshots(opts.Dir)
	if len(snaps) != 2 { // latest two are kept
		t.Fatalf("snapshots kept: %v", snaps)
	}
	m := j2.Metrics()
	if m.Snapshots != 1 || m.LastSnapshotLSN != lsn {
		t.Fatalf("metrics = %+v", m)
	}

	// And recovery from the final snapshot alone reproduces the state.
	_, rec2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.SnapshotLSN != lsn || rec2.Records != 0 {
		t.Fatalf("final reopen: %+v", rec2)
	}
	if rec2.State.MaxTime != 9 || len(rec2.State.Sched.Bags) != 1 ||
		rec2.State.Sched.TasksCompleted != 1 {
		t.Fatalf("state from final snapshot: MaxTime=%v sched=%+v",
			rec2.State.MaxTime, rec2.State.Sched)
	}
}

func TestCorruptSnapshotFallsBack(t *testing.T) {
	opts := testOptions(t)
	j, _, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	recs := script()
	last := mustAppend(t, j, recs)
	st := NewState()
	for i := range recs {
		if err := st.Apply(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	st.Time = 8
	if err := j.WriteSnapshot(last, st); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(opts.Dir, snapName(last))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, rec, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if rec.SnapshotsSkipped != 1 || rec.SnapshotLSN != 0 {
		t.Fatalf("rec = %+v", rec)
	}
	// Full log replay still reconstructs everything: the whole log sits in
	// the active segment, which pruning never deletes.
	checkScriptState(t, rec.State)
}

func TestFsyncModes(t *testing.T) {
	for _, mode := range []FsyncMode{FsyncAlways, FsyncBatch, FsyncOff} {
		t.Run(mode.String(), func(t *testing.T) {
			opts := testOptions(t)
			opts.Fsync = mode
			j, _, err := Open(opts)
			if err != nil {
				t.Fatal(err)
			}
			mustAppend(t, j, script())
			m := j.Metrics()
			if mode == FsyncOff && m.Fsyncs != 0 {
				t.Fatalf("fsync=off performed %d fsyncs", m.Fsyncs)
			}
			if mode != FsyncOff && m.Fsyncs == 0 {
				t.Fatalf("fsync=%v performed no fsyncs", mode)
			}
			if m.Appends != uint64(len(script())) {
				t.Fatalf("appends = %d", m.Appends)
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			_, rec, err := Open(opts)
			if err != nil {
				t.Fatal(err)
			}
			if rec.Records != len(script()) {
				t.Fatalf("recovered %d records", rec.Records)
			}
			checkScriptState(t, rec.State)
		})
	}
}

func TestParseFsyncMode(t *testing.T) {
	for _, s := range []string{"always", "batch", "off"} {
		m, err := ParseFsyncMode(s)
		if err != nil || m.String() != s {
			t.Fatalf("ParseFsyncMode(%q) = %v, %v", s, m, err)
		}
	}
	if _, err := ParseFsyncMode("sometimes"); err == nil {
		t.Fatal("ParseFsyncMode accepted garbage")
	}
}
