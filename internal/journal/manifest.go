package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// ManifestName is the layout manifest's filename inside a data directory.
// Its 20+ character name can never collide with the 20-digit segment and
// snapshot names, so journal scans ignore it.
const ManifestName = "MANIFEST.json"

// Manifest records how a data directory is laid out across scheduler
// shards. The serve layer refuses to open a directory whose manifest
// disagrees with its -shards flag: per-shard journals are only exact when
// replayed by the same shard count that wrote them. Resharding rewrites
// the journals and the manifest together.
type Manifest struct {
	// Version numbers the manifest format itself.
	Version int `json:"version"`
	// Shards is the shard count the directory's journals were written
	// under. 1 means the journal lives at the directory root (the
	// pre-sharding layout); N > 1 means shard-NNNN subdirectories.
	Shards int `json:"shards"`
}

// ManifestVersion is the current manifest format version.
const ManifestVersion = 1

// ShardDirName names shard s's journal subdirectory.
func ShardDirName(s int) string { return fmt.Sprintf("shard-%04d", s) }

// WriteManifest atomically writes dir's layout manifest (temp file +
// rename, like snapshots: a crash never leaves a torn manifest).
func WriteManifest(dir string, m Manifest) error {
	if m.Shards < 1 {
		return fmt.Errorf("journal: manifest shard count %d", m.Shards)
	}
	if m.Version == 0 {
		m.Version = ManifestVersion
	}
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, ManifestName+".tmp")
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, ManifestName))
}

// RemoveManifest deletes dir's layout manifest, returning the directory to
// the pre-manifest (implicitly single-shard) state. Tests use it to model
// legacy directories; a missing manifest is not an error.
func RemoveManifest(dir string) error {
	err := os.Remove(filepath.Join(dir, ManifestName))
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	return err
}

// ReadManifest reads dir's layout manifest. ok is false when none exists
// (a pre-manifest data directory or an empty one).
func ReadManifest(dir string) (m Manifest, ok bool, err error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if errors.Is(err, fs.ErrNotExist) {
		return Manifest{}, false, nil
	}
	if err != nil {
		return Manifest{}, false, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, false, fmt.Errorf("journal: corrupt %s: %w", ManifestName, err)
	}
	if m.Shards < 1 {
		return Manifest{}, false, fmt.Errorf("journal: %s: shard count %d", ManifestName, m.Shards)
	}
	return m, true, nil
}
