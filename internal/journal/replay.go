package journal

import (
	"encoding/json"
	"fmt"
	"slices"

	"botgrid/internal/core"
)

// WorkerSnapshot is the durable state of one worker registration: the
// binding of a worker ID to a grid machine slot, with the coarsened last
// lease-renewal time recovery uses to re-arm expiry deadlines.
type WorkerSnapshot struct {
	ID       string  `json:"id"`
	Machine  int     `json:"machine"`
	Power    float64 `json:"power"`
	LastSeen float64 `json:"last_seen"`
}

// CompletedBag archives a finished bag: the scheduler drops completed bags,
// but the service keeps serving their final status after recovery.
type CompletedBag struct {
	ID          int     `json:"id"`
	Arrival     float64 `json:"arrival"`
	Granularity float64 `json:"granularity"`
	DoneAt      float64 `json:"done_at"`
	Tasks       int     `json:"tasks"`
}

// State is the full durable state of the dispatch service as plain data:
// the scheduler snapshot plus the service-level worker table and completed
// bag archive. Recovery replays journal records into a State, then the
// service promotes Sched via core.RestoreLiveScheduler.
type State struct {
	// Time is the service clock when the snapshot was captured.
	Time float64 `json:"time"`
	// Sched is the scheduler's durable state.
	Sched *core.SchedulerSnapshot `json:"sched"`
	// Workers lists worker registrations in registration order.
	Workers []WorkerSnapshot `json:"workers,omitempty"`
	// Completed archives finished bags in completion order.
	Completed []CompletedBag `json:"completed,omitempty"`
	// Service is an opaque blob the service layer round-trips through
	// snapshots (dispatch counters and the like); the journal does not
	// interpret it.
	Service json.RawMessage `json:"service,omitempty"`

	// MaxTime is the largest event time seen across the snapshot and every
	// replayed record; the recovered clock must not run behind it.
	MaxTime float64 `json:"-"`
}

// NewState returns an empty pre-boot State.
func NewState() *State {
	return &State{Sched: &core.SchedulerSnapshot{}}
}

func (st *State) observe(t float64) {
	if t > st.MaxTime {
		st.MaxTime = t
	}
}

// bag returns a pointer to the active bag with the given ID.
func (st *State) bag(id int) (*core.BagSnapshot, error) {
	for i := range st.Sched.Bags {
		if st.Sched.Bags[i].ID == id {
			return &st.Sched.Bags[i], nil
		}
	}
	return nil, fmt.Errorf("journal: replay: unknown bag %d", id)
}

// Apply folds one journal record into the state. Errors mean the log
// contradicts the state it is being replayed onto — corruption or a bug —
// and recovery must stop.
func (st *State) Apply(r *Record) error {
	st.observe(r.Time)
	switch r.Kind {
	case KindBagSubmitted:
		return st.applyBagSubmitted(r)
	case KindReplicaStarted:
		return st.applyReplicaStarted(r)
	case KindTaskCompleted:
		return st.applyTaskCompleted(r)
	case KindBagCompleted:
		return st.applyBagCompleted(r)
	case KindMachineDown:
		return st.applyMachineDown(r)
	case KindMachineUp:
		// Machine slots are not restored as up unless they hold a replica;
		// the record exists for the audit trail only.
		return nil
	case KindWorkerRegistered:
		return st.applyWorkerRegistered(r)
	case KindWorkerSeen:
		return st.applyWorkerSeen(r)
	default:
		return fmt.Errorf("journal: replay: unknown record kind %d", r.Kind)
	}
}

func (st *State) applyBagSubmitted(r *Record) error {
	s := st.Sched
	if r.Bag != s.NextBagID {
		return fmt.Errorf("journal: replay: bag %d submitted, expected %d", r.Bag, s.NextBagID)
	}
	bs := core.BagSnapshot{
		ID:          r.Bag,
		Arrival:     r.Time,
		Granularity: r.Granularity,
		FirstStart:  -1,
		Tasks:       make([]core.TaskSnapshot, len(r.Works)),
		Pending:     make([]int, len(r.Works)),
	}
	for i, w := range r.Works {
		bs.Tasks[i] = core.TaskSnapshot{
			Work:       w,
			State:      core.TaskPending,
			FirstStart: -1,
			DoneAt:     -1,
			IdleSince:  r.Time,
		}
		bs.Pending[i] = i
	}
	s.Bags = append(s.Bags, bs)
	s.NextBagID = r.Bag + 1
	s.Submitted++
	return nil
}

func (st *State) applyReplicaStarted(r *Record) error {
	s := st.Sched
	b, err := st.bag(r.Bag)
	if err != nil {
		return err
	}
	if r.Task < 0 || r.Task >= len(b.Tasks) {
		return fmt.Errorf("journal: replay: replica on task %d/%d out of range", r.Bag, r.Task)
	}
	t := &b.Tasks[r.Task]
	switch t.State {
	case core.TaskPending:
		i := slices.Index(b.Pending, r.Task)
		switch {
		case i < 0:
			return fmt.Errorf("journal: replay: pending task %d/%d not queued", r.Bag, r.Task)
		case i == 0:
			// Dispatch pops the queue front, so this is the overwhelmingly
			// common case; re-slicing keeps replay linear in log length.
			b.Pending = b.Pending[1:]
		default:
			b.Pending = slices.Delete(b.Pending, i, i+1)
		}
		t.IdleAccum += r.Time - t.IdleSince
		t.State = core.TaskRunning
		t.Restart = false
		if t.FirstStart < 0 {
			t.FirstStart = r.Time
		}
		if b.FirstStart < 0 {
			b.FirstStart = r.Time
		}
	case core.TaskRunning:
		// An additional replica of an already-running task.
	default:
		return fmt.Errorf("journal: replay: replica started on done task %d/%d", r.Bag, r.Task)
	}
	for _, rep := range s.Replicas {
		if rep.Machine == r.Machine {
			return fmt.Errorf("journal: replay: machine %d already busy at seq %d", r.Machine, r.Seq)
		}
	}
	s.Replicas = append(s.Replicas, core.ReplicaSnapshot{
		Seq: r.Seq, Bag: r.Bag, Task: r.Task, Machine: r.Machine, Started: r.Time,
	})
	if int(r.Seq) > s.ReplicasStarted {
		s.ReplicasStarted = int(r.Seq)
	}
	return nil
}

// dropReplicas removes every replica of bag/task, returning how many.
func (st *State) dropReplicas(bag, task int) int {
	s := st.Sched
	n := 0
	for i := 0; i < len(s.Replicas); {
		if s.Replicas[i].Bag == bag && s.Replicas[i].Task == task {
			s.Replicas = slices.Delete(s.Replicas, i, i+1)
			n++
		} else {
			i++
		}
	}
	return n
}

func (st *State) applyTaskCompleted(r *Record) error {
	b, err := st.bag(r.Bag)
	if err != nil {
		return err
	}
	if r.Task < 0 || r.Task >= len(b.Tasks) {
		return fmt.Errorf("journal: replay: completion of task %d/%d out of range", r.Bag, r.Task)
	}
	t := &b.Tasks[r.Task]
	if t.State != core.TaskRunning {
		return fmt.Errorf("journal: replay: completion of %v task %d/%d", t.State, r.Bag, r.Task)
	}
	dropped := st.dropReplicas(r.Bag, r.Task)
	if dropped == 0 {
		return fmt.Errorf("journal: replay: completed task %d/%d had no replica", r.Bag, r.Task)
	}
	t.State = core.TaskDone
	t.DoneAt = r.Time
	st.Sched.TasksCompleted++
	st.Sched.ReplicasKilled += dropped - 1
	return nil
}

func (st *State) applyBagCompleted(r *Record) error {
	b, err := st.bag(r.Bag)
	if err != nil {
		return err
	}
	for i := range b.Tasks {
		if b.Tasks[i].State != core.TaskDone {
			return fmt.Errorf("journal: replay: bag %d completed with task %d %v", r.Bag, i, b.Tasks[i].State)
		}
	}
	st.Completed = append(st.Completed, CompletedBag{
		ID:          b.ID,
		Arrival:     b.Arrival,
		Granularity: b.Granularity,
		DoneAt:      r.Time,
		Tasks:       len(b.Tasks),
	})
	s := st.Sched
	for i := range s.Bags {
		if s.Bags[i].ID == r.Bag {
			s.Bags = slices.Delete(s.Bags, i, i+1)
			break
		}
	}
	s.Completed++
	return nil
}

func (st *State) applyMachineDown(r *Record) error {
	s := st.Sched
	for i := range s.Replicas {
		rep := s.Replicas[i]
		if rep.Machine != r.Machine {
			continue
		}
		s.Replicas = slices.Delete(s.Replicas, i, i+1)
		s.Failures++
		b, err := st.bag(rep.Bag)
		if err != nil {
			return err
		}
		t := &b.Tasks[rep.Task]
		t.Failures++
		still := false
		for _, other := range s.Replicas {
			if other.Bag == rep.Bag && other.Task == rep.Task {
				still = true
				break
			}
		}
		if !still {
			// Last replica lost: the task re-enters its bag's queue at the
			// front (WQR-FT resubmission priority).
			t.State = core.TaskPending
			t.Restart = true
			t.IdleSince = r.Time
			b.Pending = slices.Insert(b.Pending, 0, rep.Task)
		}
		break
	}
	// A machine with no replica going down needs no state change.
	return nil
}

func (st *State) applyWorkerRegistered(r *Record) error {
	for i := range st.Workers {
		if st.Workers[i].ID == r.Worker {
			if st.Workers[i].Machine != r.Machine {
				return fmt.Errorf("journal: replay: worker %q moved slot %d -> %d",
					r.Worker, st.Workers[i].Machine, r.Machine)
			}
			st.Workers[i].Power = r.Power
			st.Workers[i].LastSeen = r.Time
			return nil
		}
	}
	for i := range st.Workers {
		if st.Workers[i].Machine == r.Machine {
			return fmt.Errorf("journal: replay: slot %d taken by %q, claimed by %q",
				r.Machine, st.Workers[i].ID, r.Worker)
		}
	}
	st.Workers = append(st.Workers, WorkerSnapshot{
		ID: r.Worker, Machine: r.Machine, Power: r.Power, LastSeen: r.Time,
	})
	return nil
}

func (st *State) applyWorkerSeen(r *Record) error {
	for i := range st.Workers {
		if st.Workers[i].Machine == r.Machine {
			if r.Time > st.Workers[i].LastSeen {
				st.Workers[i].LastSeen = r.Time
			}
			return nil
		}
	}
	return fmt.Errorf("journal: replay: seen record for unregistered slot %d", r.Machine)
}
