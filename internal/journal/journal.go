package journal

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// FsyncMode selects the durability/latency trade-off of the append path.
type FsyncMode int

const (
	// FsyncBatch groups records that arrive within BatchDelay of each
	// other into one fsync (group commit). The default: near-always
	// durability at a small fraction of the per-record fsync cost.
	FsyncBatch FsyncMode = iota
	// FsyncAlways fsyncs as soon as any record is pending; callers never
	// observe an acknowledged record lost to a crash.
	FsyncAlways
	// FsyncOff writes records to the OS without ever fsyncing. An OS
	// crash can lose the tail; a process crash cannot. WaitDurable
	// returns immediately in this mode.
	FsyncOff
)

// ParseFsyncMode parses "always", "batch" or "off".
func ParseFsyncMode(s string) (FsyncMode, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "batch":
		return FsyncBatch, nil
	case "off":
		return FsyncOff, nil
	default:
		return FsyncBatch, fmt.Errorf("journal: unknown fsync mode %q (want always, batch or off)", s)
	}
}

// String names the mode.
func (m FsyncMode) String() string {
	switch m {
	case FsyncAlways:
		return "always"
	case FsyncOff:
		return "off"
	default:
		return "batch"
	}
}

// Options configures a Journal.
type Options struct {
	// Dir is the journal directory (created if absent).
	Dir string
	// Fsync selects the append durability mode.
	Fsync FsyncMode
	// SegmentBytes rotates the active segment once it exceeds this size.
	// Default 4 MiB.
	SegmentBytes int64
	// BatchDelay is the group-commit accumulation window in FsyncBatch
	// mode. Default 2ms.
	BatchDelay time.Duration
	// SnapshotMTBF is the expected time between service crashes, the MTBF
	// input to Young's formula for the snapshot cadence. Default 10min.
	SnapshotMTBF time.Duration
	// Epoch is the wall-clock origin stored with a freshly created
	// journal; zero means now. Reopening an existing journal returns its
	// stored epoch instead.
	Epoch time.Time
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.BatchDelay <= 0 {
		o.BatchDelay = 2 * time.Millisecond
	}
	if o.SnapshotMTBF <= 0 {
		o.SnapshotMTBF = 10 * time.Minute
	}
	return o
}

// Recovered summarizes what Open reconstructed from disk.
type Recovered struct {
	// Fresh is true when the journal directory was newly initialized.
	Fresh bool
	// State is the replayed service state (empty when Fresh).
	State *State
	// Epoch is the persisted wall-clock origin of the service timeline.
	Epoch time.Time
	// SnapshotLSN is the LSN of the snapshot recovery started from (0 if
	// recovery replayed the log from the beginning).
	SnapshotLSN uint64
	// LastLSN is the last valid record recovered from the log.
	LastLSN uint64
	// Records is the number of log records replayed on top of the
	// snapshot.
	Records int
	// SegmentsScanned counts log segments read during recovery.
	SegmentsScanned int
	// TornBytes is the size of the invalid tail truncated from the last
	// segment (a record half-written when the crash hit).
	TornBytes int64
	// SnapshotsSkipped counts newer snapshot files that failed validation
	// and were ignored in favor of an older one.
	SnapshotsSkipped int
	// Elapsed is the wall time recovery took.
	Elapsed time.Duration
}

// ErrClosed reports use of a closed journal.
var ErrClosed = errors.New("journal: closed")

// Journal is an append-only, CRC-checked, segmented record log with
// group-committed fsync and snapshot-based truncation. Append and
// WaitDurable are safe for concurrent use; WriteSnapshot calls must be
// serialized by the caller.
type Journal struct {
	opts Options
	dir  string

	mu    sync.Mutex
	syncC *sync.Cond // signals the syncer that records are pending
	doneC *sync.Cond // broadcast after every flush attempt

	// Double-buffered pending encodings: appenders fill pend while the
	// syncer writes the previous batch; the buffers swap roles each flush.
	pend      []byte
	spare     []byte
	pendCount int

	nextLSN   uint64 // LSN the next Append assigns
	syncedLSN uint64 // all records <= this are flushed (and fsynced unless FsyncOff)

	f        *os.File // active segment; owned by the syncer while it runs
	segSize  int64
	segFirst uint64

	err      error // first fatal write error; fails all further appends
	closed   bool
	loopDone bool
	loopExit chan struct{}

	// Counters (see Metrics).
	appends     uint64
	fsyncs      uint64
	syncedRecs  uint64
	snapshots   uint64
	lastSnapLSN uint64
	lastSnapAt  time.Time
	snapAppends uint64
	snapCost    float64
	snapErr     error
}

// Open initializes or recovers the journal in opts.Dir: it loads the
// newest valid snapshot, replays every later log record (truncating a torn
// final record), opens a fresh active segment, and starts the group-commit
// syncer. The returned Recovered carries the replayed state; promote it
// with core.RestoreLiveScheduler before appending new records.
func Open(opts Options) (*Journal, *Recovered, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, nil, errors.New("journal: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, err
	}
	start := time.Now()
	rec := &Recovered{}
	epoch, fresh, err := loadOrInitMeta(opts.Dir, opts.Epoch)
	if err != nil {
		return nil, nil, err
	}
	rec.Fresh = fresh
	rec.Epoch = epoch

	// Newest snapshot that validates wins; corrupt ones (a crash can tear
	// only the un-renamed temp file, but defend anyway) fall back to older.
	snaps, err := listSnapshots(opts.Dir)
	if err != nil {
		return nil, nil, err
	}
	var st *State
	var snapLSN uint64
	for i := len(snaps) - 1; i >= 0; i-- {
		s, serr := readSnapshot(filepath.Join(opts.Dir, snapName(snaps[i])), snaps[i])
		if serr == nil {
			st, snapLSN = s, snaps[i]
			break
		}
		rec.SnapshotsSkipped++
	}
	if st == nil {
		st = NewState()
	}
	rec.SnapshotLSN = snapLSN
	rec.State = st

	segs, err := listSegments(opts.Dir)
	if err != nil {
		return nil, nil, err
	}
	next := snapLSN + 1
	for i, first := range segs {
		if i+1 < len(segs) && segs[i+1] <= next {
			continue // every record already covered by the snapshot
		}
		path := filepath.Join(opts.Dir, segName(first))
		res, err := scanSegment(path, func(lsn uint64, payload []byte) error {
			if lsn < next {
				return nil // covered by the snapshot
			}
			r, derr := DecodeRecord(payload)
			if derr != nil {
				return fmt.Errorf("%s: record %d: %w", filepath.Base(path), lsn, derr)
			}
			if aerr := st.Apply(&r); aerr != nil {
				return fmt.Errorf("%s: record %d: %w", filepath.Base(path), lsn, aerr)
			}
			rec.Records++
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		rec.SegmentsScanned++
		if res.firstLSN != first {
			return nil, nil, fmt.Errorf("journal: %s: header LSN %d != filename", segName(first), res.firstLSN)
		}
		if first > next {
			return nil, nil, fmt.Errorf("journal: log gap: segment %s begins after record %d", segName(first), next-1)
		}
		if res.torn > 0 {
			if i+1 < len(segs) {
				return nil, nil, fmt.Errorf("journal: %s: %d invalid bytes mid-log", segName(first), res.torn)
			}
			// Torn tail of the final segment: the record being written
			// when the crash hit. Drop it; it was never acknowledged.
			if err := os.Truncate(path, res.goodSize); err != nil {
				return nil, nil, err
			}
			rec.TornBytes = res.torn
		}
		if res.nextLSN > next {
			next = res.nextLSN
		}
	}
	rec.LastLSN = next - 1
	rec.Elapsed = time.Since(start)

	j := &Journal{
		opts:       opts,
		dir:        opts.Dir,
		nextLSN:    next,
		syncedLSN:  next - 1,
		segFirst:   next,
		lastSnapAt: start,
		loopExit:   make(chan struct{}),
	}
	j.syncC = sync.NewCond(&j.mu)
	j.doneC = sync.NewCond(&j.mu)
	if err := j.openActiveSegment(next); err != nil {
		return nil, nil, err
	}
	go j.syncLoop()
	return j, rec, nil
}

// openActiveSegment creates (or resets a record-less leftover of) the
// segment whose first record will be lsn. Recovery always starts a fresh
// segment rather than appending to the truncated one; the old segment
// stays behind until a snapshot prunes it.
func (j *Journal) openActiveSegment(lsn uint64) error {
	path := filepath.Join(j.dir, segName(lsn))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(segmentHeader(lsn)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(j.dir); err != nil {
		f.Close()
		return err
	}
	j.f = f
	j.segSize = int64(segHeader)
	j.segFirst = lsn
	return nil
}

// loadOrInitMeta reads the journal META file, creating it with the given
// (or current) epoch on first use. The epoch anchors the service's
// float64-seconds timeline to wall time across restarts.
func loadOrInitMeta(dir string, epoch time.Time) (time.Time, bool, error) {
	path := filepath.Join(dir, "META")
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		if epoch.IsZero() {
			epoch = time.Now()
		}
		content := fmt.Sprintf("botgrid-journal v1\nepoch %d\n", epoch.UnixNano())
		if werr := writeFileSync(path, []byte(content)); werr != nil {
			return time.Time{}, false, werr
		}
		if werr := syncDir(dir); werr != nil {
			return time.Time{}, false, werr
		}
		return epoch, true, nil
	}
	if err != nil {
		return time.Time{}, false, err
	}
	var nanos int64
	if _, err := fmt.Sscanf(string(data), "botgrid-journal v1\nepoch %d\n", &nanos); err != nil {
		return time.Time{}, false, fmt.Errorf("journal: unreadable META file: %w", err)
	}
	return time.Unix(0, nanos), false, nil
}

// Append encodes r and queues it for the group-commit syncer, returning
// the record's LSN. The record is NOT durable yet; pair with WaitDurable
// when the caller must not acknowledge before durability.
//
//botlint:hotpath
func (j *Journal) Append(r *Record) (uint64, error) {
	j.mu.Lock()
	if j.err != nil {
		err := j.err
		j.mu.Unlock()
		return 0, err
	}
	if j.closed {
		j.mu.Unlock()
		return 0, ErrClosed
	}
	j.pend = EncodeRecordFramed(j.pend, r)
	lsn := j.nextLSN
	j.nextLSN++
	j.pendCount++
	j.appends++
	j.syncC.Signal()
	j.mu.Unlock()
	return lsn, nil
}

// EncodeRecordFramed appends r's framed encoding to dst. Exposed for the
// scratch-free encode path and for tests that build segment images.
//
//botlint:hotpath
func EncodeRecordFramed(dst []byte, r *Record) []byte {
	// Encode into the tail of dst past a reserved frame header, then fill
	// the header in — one pass, no scratch buffer.
	base := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	dst = EncodeRecord(dst, r)
	payload := dst[base+frameHeader:]
	frameFill(dst[base:base+frameHeader], payload)
	return dst
}

// WaitDurable blocks until record lsn is durable under the journal's
// fsync mode: fsynced (always/batch), or merely accepted (off, returns
// immediately). It returns the journal's fatal error, if any.
func (j *Journal) WaitDurable(lsn uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.opts.Fsync == FsyncOff {
		return j.err
	}
	for j.syncedLSN < lsn && j.err == nil && !j.loopDone {
		j.doneC.Wait()
	}
	if j.err != nil {
		return j.err
	}
	if j.syncedLSN < lsn {
		return ErrClosed
	}
	return nil
}

// LastLSN returns the LSN of the most recently appended record (0 when the
// journal has none).
func (j *Journal) LastLSN() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.nextLSN - 1
}

// Mode returns the journal's fsync mode.
func (j *Journal) Mode() FsyncMode { return j.opts.Fsync }

// Close drains pending records, fsyncs, and closes the active segment.
// Safe to call twice.
func (j *Journal) Close() error {
	j.mu.Lock()
	already := j.closed
	j.closed = true
	j.syncC.Signal()
	j.mu.Unlock()
	<-j.loopExit
	j.mu.Lock()
	defer j.mu.Unlock()
	if !already && j.f != nil {
		if err := j.f.Sync(); err != nil && j.err == nil {
			j.err = err
		}
		if err := j.f.Close(); err != nil && j.err == nil {
			j.err = err
		}
		j.f = nil
	}
	return j.err
}

// syncLoop is the group-commit syncer: it swaps out the pending buffer,
// writes it to the active segment (rotating first when full), fsyncs per
// the mode, and publishes the new durable LSN. One goroutine per journal.
func (j *Journal) syncLoop() {
	j.mu.Lock()
	for {
		for j.pendCount == 0 && !j.closed && j.err == nil {
			j.syncC.Wait()
		}
		if j.err != nil || (j.closed && j.pendCount == 0) {
			break
		}
		if j.opts.Fsync != FsyncAlways && !j.closed {
			// Group commit: let more records pile in behind this flush.
			j.mu.Unlock()
			time.Sleep(j.opts.BatchDelay)
			j.mu.Lock()
		}
		batch := j.pend
		count := j.pendCount
		last := j.nextLSN - 1
		first := last - uint64(count) + 1
		j.pend = j.spare[:0]
		j.spare = nil
		j.pendCount = 0
		rotate := j.segSize >= j.opts.SegmentBytes
		j.mu.Unlock()

		var err error
		if rotate {
			err = j.rotateSegment(first)
		}
		if err == nil {
			_, err = j.f.Write(batch)
		}
		if err == nil && j.opts.Fsync != FsyncOff {
			err = j.f.Sync()
		}

		j.mu.Lock()
		j.spare = batch[:0]
		if err != nil {
			j.err = err
		} else {
			if rotate {
				j.segSize = int64(segHeader)
				j.segFirst = first
			}
			j.segSize += int64(len(batch))
			j.syncedLSN = last
			if j.opts.Fsync != FsyncOff {
				j.fsyncs++
				j.syncedRecs += uint64(count)
			}
		}
		j.doneC.Broadcast()
	}
	j.loopDone = true
	j.doneC.Broadcast()
	j.mu.Unlock()
	close(j.loopExit)
}

// rotateSegment closes the active segment and starts a new one whose first
// record is lsn. Called only from the syncer.
func (j *Journal) rotateSegment(lsn uint64) error {
	if err := j.f.Sync(); err != nil {
		return err
	}
	if err := j.f.Close(); err != nil {
		return err
	}
	j.f = nil
	return j.openActiveSegment(lsn)
}

// noteError records a non-fatal background error (snapshot failures) for
// Metrics; the log itself keeps running.
func (j *Journal) noteError(err error) {
	j.mu.Lock()
	if j.snapErr == nil {
		j.snapErr = err
	}
	j.mu.Unlock()
}

// Metrics is a point-in-time snapshot of journal counters.
type Metrics struct {
	// Appends counts records accepted by Append.
	Appends uint64 `json:"appends"`
	// Fsyncs counts fsync calls on the log; RecordsPerFsync is the mean
	// group-commit batch size (records made durable per fsync).
	Fsyncs          uint64  `json:"fsyncs"`
	RecordsPerFsync float64 `json:"records_per_fsync"`
	// PendingRecords is the current un-flushed backlog.
	PendingRecords int `json:"pending_records"`
	// LastLSN / DurableLSN are the newest assigned and newest flushed
	// record numbers.
	LastLSN    uint64 `json:"last_lsn"`
	DurableLSN uint64 `json:"durable_lsn"`
	// Snapshots counts snapshots written; LastSnapshotLSN is the newest
	// one's cover point and LastSnapshotAgeSec its age (-1 before the
	// first snapshot).
	Snapshots          uint64  `json:"snapshots"`
	LastSnapshotLSN    uint64  `json:"last_snapshot_lsn"`
	LastSnapshotAgeSec float64 `json:"last_snapshot_age_sec"`
	// SnapshotCostSec is the EWMA snapshot cost driving the Young-formula
	// cadence; SnapshotIntervalSec is the resulting interval.
	SnapshotCostSec     float64 `json:"snapshot_cost_sec"`
	SnapshotIntervalSec float64 `json:"snapshot_interval_sec"`
	// Err is the first fatal log error or background snapshot error.
	Err string `json:"err,omitempty"`
}

// Metrics returns current journal counters.
func (j *Journal) Metrics() Metrics {
	iv := j.snapshotInterval().Seconds()
	j.mu.Lock()
	defer j.mu.Unlock()
	m := Metrics{
		Appends:             j.appends,
		Fsyncs:              j.fsyncs,
		PendingRecords:      j.pendCount,
		LastLSN:             j.nextLSN - 1,
		DurableLSN:          j.syncedLSN,
		Snapshots:           j.snapshots,
		LastSnapshotLSN:     j.lastSnapLSN,
		LastSnapshotAgeSec:  -1,
		SnapshotCostSec:     j.snapCost,
		SnapshotIntervalSec: iv,
	}
	if j.fsyncs > 0 {
		m.RecordsPerFsync = float64(j.syncedRecs) / float64(j.fsyncs)
	}
	if j.snapshots > 0 {
		m.LastSnapshotAgeSec = time.Since(j.lastSnapAt).Seconds()
	}
	switch {
	case j.err != nil:
		m.Err = j.err.Error()
	case j.snapErr != nil:
		m.Err = j.snapErr.Error()
	}
	return m
}
