package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Segment file layout:
//
//	header:  8-byte magic "BGWAL01\n" + uint64 LE first-LSN
//	frames:  repeated [uint32 LE payload length][uint32 LE CRC32-IEEE][payload]
//
// Record N of a segment has LSN firstLSN+N. Frames carry no LSN of their
// own: the log is strictly sequential, so position defines identity. A
// frame that fails the length or CRC check in the *last* segment is a torn
// tail from the crash — everything from it onward is dropped and the file
// truncated. The same failure in an earlier segment means real corruption
// and recovery refuses to proceed.

const (
	segMagic    = "BGWAL01\n"
	segHeader   = len(segMagic) + 8
	frameHeader = 8
	// maxFramePayload bounds a single record frame; anything larger is
	// treated as a corrupt length prefix rather than allocated.
	maxFramePayload = 1 << 26
)

var crcTable = crc32.IEEETable

// segName formats a segment filename from its first LSN.
func segName(firstLSN uint64) string {
	return fmt.Sprintf("%020d.wal", firstLSN)
}

// parseSegName extracts the first LSN from a segment filename.
func parseSegName(name string) (uint64, bool) {
	base, ok := strings.CutSuffix(name, ".wal")
	if !ok || len(base) != 20 {
		return 0, false
	}
	n, err := strconv.ParseUint(base, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// listSegments returns the segment first-LSNs in dir, ascending.
func listSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var firsts []uint64
	for _, e := range ents {
		if first, ok := parseSegName(e.Name()); ok {
			firsts = append(firsts, first)
		}
	}
	sort.Slice(firsts, func(i, j int) bool { return firsts[i] < firsts[j] })
	return firsts, nil
}

// appendFrame wraps payload into a frame and appends it to dst.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, crcTable))
	return append(dst, payload...)
}

// frameFill writes the frame header (length + CRC) for payload into hdr,
// which must be frameHeader bytes.
func frameFill(hdr, payload []byte) {
	binary.LittleEndian.PutUint32(hdr, uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crcTable))
}

// segmentHeader renders the 16-byte segment file header.
func segmentHeader(firstLSN uint64) []byte {
	h := make([]byte, 0, segHeader)
	h = append(h, segMagic...)
	return binary.LittleEndian.AppendUint64(h, firstLSN)
}

// scanResult summarizes one segment scan.
type scanResult struct {
	firstLSN uint64 // from the header
	nextLSN  uint64 // LSN the next record would get
	records  int    // valid records seen
	goodSize int64  // file offset just past the last valid frame
	torn     int64  // trailing bytes that failed validation (0 if clean)
}

// scanSegment reads the segment at path and calls fn for each valid record
// payload in order. Validation stops at the first bad frame; the remainder
// is reported as torn rather than failing the scan. Payload slices passed
// to fn alias the file buffer and must not be retained.
func scanSegment(path string, fn func(lsn uint64, payload []byte) error) (scanResult, error) {
	var res scanResult
	data, err := os.ReadFile(path)
	if err != nil {
		return res, err
	}
	if len(data) < segHeader || string(data[:len(segMagic)]) != segMagic {
		return res, fmt.Errorf("journal: %s: bad segment header", filepath.Base(path))
	}
	res.firstLSN = binary.LittleEndian.Uint64(data[len(segMagic):])
	res.nextLSN = res.firstLSN
	off := int64(segHeader)
	total := int64(len(data))
	for off < total {
		if total-off < frameHeader {
			break
		}
		length := int64(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if length > maxFramePayload || total-off-frameHeader < length {
			break
		}
		payload := data[off+frameHeader : off+frameHeader+length]
		if crc32.Checksum(payload, crcTable) != sum {
			break
		}
		if fn != nil {
			if err := fn(res.nextLSN, payload); err != nil {
				return res, err
			}
		}
		res.nextLSN++
		res.records++
		off += frameHeader + length
	}
	res.goodSize = off
	res.torn = total - off
	return res, nil
}
