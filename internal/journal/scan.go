package journal

// ScanDir: offline, read-only iteration over a journal directory's WAL
// records. Tooling and tests use it to compare record streams without
// opening (and thereby mutating) the journal.

import (
	"fmt"
	"path/filepath"
)

// ScanDir walks every decodable record in dir's WAL segments in LSN
// order, calling fn for each. The journal must not be open for writing.
// A torn tail (crash mid-write) ends the scan silently, exactly like
// recovery; a corrupt segment interior or an undecodable record is an
// error. Records already folded into a snapshot and pruned are gone —
// ScanDir sees only what recovery would replay.
func ScanDir(dir string, fn func(lsn uint64, rec *Record) error) error {
	firsts, err := listSegments(dir)
	if err != nil {
		return err
	}
	for _, first := range firsts {
		path := filepath.Join(dir, segName(first))
		_, err := scanSegment(path, func(lsn uint64, payload []byte) error {
			rec, derr := DecodeRecord(payload)
			if derr != nil {
				return fmt.Errorf("journal: %s: record %d: %w", filepath.Base(path), lsn, derr)
			}
			return fn(lsn, &rec)
		})
		if err != nil {
			return err
		}
	}
	return nil
}
