package journal

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzDecodeRecord drives arbitrary bytes through the record codec: it
// must never panic, and any payload it accepts must decode to the same
// record after re-encoding (uvarints admit non-minimal forms, so byte-level
// canonicality is not required — semantic idempotence is).
func FuzzDecodeRecord(f *testing.F) {
	for _, r := range script() {
		f.Add(EncodeRecord(nil, &r))
	}
	f.Add([]byte{})
	f.Add([]byte{byte(KindBagSubmitted)})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeRecord(data)
		if err != nil {
			return
		}
		re := EncodeRecord(nil, &r)
		r2, err := DecodeRecord(re)
		if err != nil {
			t.Fatalf("re-encoding of accepted record fails to decode: %v", err)
		}
		if !reflect.DeepEqual(r, r2) {
			t.Fatalf("decode(encode(r)) = %+v, want %+v", r2, r)
		}
	})
}

// FuzzSegmentScan drives arbitrary bytes through the segment scanner: it
// must never panic, and on success its accounting must be consistent —
// every byte is either validated log prefix or reported torn tail.
func FuzzSegmentScan(f *testing.F) {
	img := segmentHeader(1)
	for _, r := range script() {
		img = EncodeRecordFramed(img, &r)
	}
	f.Add(img)
	f.Add(img[:len(img)-3])                      // torn final record
	f.Add(append(img[:len(img):len(img)], 0xde)) // trailing garbage
	f.Add([]byte("short"))
	f.Add(segmentHeader(7))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), segName(1))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		res, err := scanSegment(path, func(lsn uint64, payload []byte) error {
			DecodeRecord(payload) // exercise the codec; errors are the caller's policy
			return nil
		})
		if err != nil {
			return
		}
		if res.goodSize+res.torn != int64(len(data)) {
			t.Fatalf("goodSize %d + torn %d != file size %d", res.goodSize, res.torn, len(data))
		}
		if res.goodSize < int64(segHeader) {
			t.Fatalf("goodSize %d below header size", res.goodSize)
		}
		if res.nextLSN-res.firstLSN != uint64(res.records) {
			t.Fatalf("LSN span %d..%d disagrees with %d records",
				res.firstLSN, res.nextLSN, res.records)
		}
	})
}
