// Package journal is the durability subsystem of the live work-dispatch
// service: a write-ahead log of scheduler mutations plus periodic state
// snapshots, replayed on startup to recover a crashed daemon's complete
// scheduling state.
//
// The pieces, bottom-up:
//
//   - record.go: the binary record codec. One Record per scheduler
//     mutation (internal/core's Mutation stream) or service event (worker
//     registration, lease renewal).
//   - segment.go: length-prefixed, CRC32-checked frames in numbered
//     segment files; scanning truncates a torn final record.
//   - journal.go: the append path with group-committed fsync, segment
//     rotation, and startup recovery (latest snapshot + log tail replay).
//   - snapshot.go: snapshot file format and the Young's-formula cadence
//     that decides when to take one.
//   - replay.go: the replay state machine that applies records to a plain
//     data State, later promoted to a live scheduler by
//     core.RestoreLiveScheduler.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"botgrid/internal/core"
)

// Kind enumerates journal record types. The first six mirror
// core.MutationKind one-to-one; the worker records are service-level
// events the scheduler does not see.
type Kind uint8

const (
	// KindBagSubmitted journals core.MutBagSubmitted.
	KindBagSubmitted Kind = 1
	// KindReplicaStarted journals core.MutReplicaStarted — the grant of a
	// replica lease to the worker owning the machine slot.
	KindReplicaStarted Kind = 2
	// KindTaskCompleted journals core.MutTaskCompleted (an accepted
	// result; sibling replicas are implicitly superseded).
	KindTaskCompleted Kind = 3
	// KindBagCompleted journals core.MutBagCompleted.
	KindBagCompleted Kind = 4
	// KindMachineDown journals core.MutMachineDown (lease expiry or a
	// worker-reported failure; any hosted replica is implicitly lost).
	KindMachineDown Kind = 5
	// KindMachineUp journals core.MutMachineUp.
	KindMachineUp Kind = 6
	// KindWorkerRegistered journals a worker's binding to a machine slot
	// (or a power update for an existing binding).
	KindWorkerRegistered Kind = 7
	// KindWorkerSeen journals a coarsened lease renewal for the worker on
	// a machine slot; recovery re-arms lease-expiry deadlines from it.
	KindWorkerSeen Kind = 8

	kindMax = KindWorkerSeen
)

// String names the record kind.
func (k Kind) String() string {
	switch k {
	case KindBagSubmitted:
		return "bag-submitted"
	case KindReplicaStarted:
		return "replica-started"
	case KindTaskCompleted:
		return "task-completed"
	case KindBagCompleted:
		return "bag-completed"
	case KindMachineDown:
		return "machine-down"
	case KindMachineUp:
		return "machine-up"
	case KindWorkerRegistered:
		return "worker-registered"
	case KindWorkerSeen:
		return "worker-seen"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Record is one journal entry. Fields beyond Kind and Time are populated
// per kind; see the Kind constants. Works and Worker are borrowed on
// encode and freshly allocated on decode.
type Record struct {
	Kind    Kind
	Time    float64
	Bag     int
	Task    int
	Machine int
	Seq     uint64
	Restart bool

	// KindBagSubmitted only.
	Granularity float64
	Works       []float64

	// KindWorkerRegistered only.
	Worker string
	Power  float64
}

// FromMutation converts a scheduler mutation into its journal record.
func FromMutation(m core.Mutation) Record {
	return Record{
		Kind:        Kind(m.Kind), // kinds 1..6 match by construction
		Time:        m.Time,
		Bag:         m.Bag,
		Task:        m.Task,
		Machine:     m.Machine,
		Seq:         m.Seq,
		Restart:     m.Restart,
		Granularity: m.Granularity,
		Works:       m.Works,
	}
}

// Decode limits: a record claiming more than these is rejected as corrupt
// before any allocation is sized from attacker-controlled input.
const (
	maxWorks    = 1 << 24 // tasks per bag
	maxWorkerID = 4096    // bytes in a worker ID
)

// ErrCorrupt reports an undecodable record payload.
var ErrCorrupt = errors.New("journal: corrupt record")

func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// EncodeRecord appends r's binary payload (without framing) to dst and
// returns the extended slice. The layout is one kind byte, the time as
// IEEE-754 bits, then kind-specific fields as uvarints and float bits.
func EncodeRecord(dst []byte, r *Record) []byte {
	dst = append(dst, byte(r.Kind))
	dst = putF64(dst, r.Time)
	switch r.Kind {
	case KindBagSubmitted:
		dst = binary.AppendUvarint(dst, uint64(r.Bag))
		dst = putF64(dst, r.Granularity)
		dst = binary.AppendUvarint(dst, uint64(len(r.Works)))
		for _, w := range r.Works {
			dst = putF64(dst, w)
		}
	case KindReplicaStarted:
		dst = binary.AppendUvarint(dst, uint64(r.Bag))
		dst = binary.AppendUvarint(dst, uint64(r.Task))
		dst = binary.AppendUvarint(dst, uint64(r.Machine))
		dst = binary.AppendUvarint(dst, r.Seq)
		dst = append(dst, b2u8(r.Restart))
	case KindTaskCompleted:
		dst = binary.AppendUvarint(dst, uint64(r.Bag))
		dst = binary.AppendUvarint(dst, uint64(r.Task))
		dst = binary.AppendUvarint(dst, r.Seq)
	case KindBagCompleted:
		dst = binary.AppendUvarint(dst, uint64(r.Bag))
	case KindMachineDown, KindMachineUp, KindWorkerSeen:
		dst = binary.AppendUvarint(dst, uint64(r.Machine))
	case KindWorkerRegistered:
		dst = binary.AppendUvarint(dst, uint64(r.Machine))
		dst = putF64(dst, r.Power)
		dst = binary.AppendUvarint(dst, uint64(len(r.Worker)))
		dst = append(dst, r.Worker...)
	default:
		panic(fmt.Sprintf("journal: encoding unknown record kind %d", r.Kind))
	}
	return dst
}

// DecodeRecord parses one record payload. It never panics: any malformed,
// truncated or trailing-garbage input returns an error wrapping
// ErrCorrupt.
func DecodeRecord(data []byte) (Record, error) {
	var r Record
	d := decoder{data: data}
	k := d.u8()
	if d.err != nil {
		return r, corrupt("empty payload")
	}
	r.Kind = Kind(k)
	if r.Kind == 0 || r.Kind > kindMax {
		return r, corrupt("unknown kind %d", k)
	}
	r.Time = d.f64()
	switch r.Kind {
	case KindBagSubmitted:
		r.Bag = d.uint()
		r.Granularity = d.f64()
		if d.err == nil && !isFinite(r.Granularity) {
			return r, corrupt("bad granularity %v", r.Granularity)
		}
		n := d.uint()
		if d.err == nil {
			if n == 0 || n > maxWorks {
				return r, corrupt("bag with %d tasks", n)
			}
			if len(d.data)-d.off < 8*n {
				return r, corrupt("works truncated")
			}
			r.Works = make([]float64, n)
			for i := range r.Works {
				w := d.f64()
				if !isFinite(w) || w < 0 {
					return r, corrupt("bad work %v", w)
				}
				r.Works[i] = w
			}
		}
	case KindReplicaStarted:
		r.Bag = d.uint()
		r.Task = d.uint()
		r.Machine = d.uint()
		r.Seq = d.uvarint()
		r.Restart = d.u8() != 0
	case KindTaskCompleted:
		r.Bag = d.uint()
		r.Task = d.uint()
		r.Seq = d.uvarint()
	case KindBagCompleted:
		r.Bag = d.uint()
	case KindMachineDown, KindMachineUp, KindWorkerSeen:
		r.Machine = d.uint()
	case KindWorkerRegistered:
		r.Machine = d.uint()
		r.Power = d.f64()
		if d.err == nil && (!isFinite(r.Power) || r.Power <= 0) {
			// Machine powers must be positive; the restored grid rejects
			// anything else.
			return r, corrupt("bad power %v", r.Power)
		}
		n := d.uint()
		if d.err == nil {
			if n > maxWorkerID {
				return r, corrupt("worker ID of %d bytes", n)
			}
			if len(d.data)-d.off < n {
				return r, corrupt("worker ID truncated")
			}
			r.Worker = string(d.data[d.off : d.off+n])
			d.off += n
		}
	}
	if d.err != nil {
		return r, d.err
	}
	if d.off != len(d.data) {
		return r, corrupt("%d trailing bytes", len(d.data)-d.off)
	}
	if !isFinite(r.Time) || r.Time < 0 {
		return r, corrupt("bad time %v", r.Time)
	}
	return r, nil
}

func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// decoder is a cursor with sticky errors over a record payload.
type decoder struct {
	data []byte
	off  int
	err  error
}

func (d *decoder) u8() byte {
	if d.err != nil || d.off >= len(d.data) {
		d.fail("truncated")
		return 0
	}
	b := d.data[d.off]
	d.off++
	return b
}

func (d *decoder) f64() float64 {
	if d.err != nil || len(d.data)-d.off < 8 {
		d.fail("truncated")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.data[d.off:]))
	d.off += 8
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.off += n
	return v
}

// uint decodes a uvarint that must fit a non-negative int.
func (d *decoder) uint() int {
	v := d.uvarint()
	if d.err == nil && v > math.MaxInt32 {
		d.fail("value %d out of range", v)
		return 0
	}
	return int(v)
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = corrupt(format, args...)
	}
}

func putF64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

func b2u8(b bool) byte {
	if b {
		return 1
	}
	return 0
}
