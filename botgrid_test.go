package botgrid

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestFacadeRun(t *testing.T) {
	cfg := NewRunConfig(Hom, HighAvail, FCFSShare, 5000, 0.5)
	cfg.NumBoTs = 20
	cfg.Warmup = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 20 || res.Saturated {
		t.Fatalf("completed=%d saturated=%v", res.Completed, res.Saturated)
	}
	if m := res.MeanTurnaround(); math.IsNaN(m) || m <= 0 {
		t.Fatalf("mean turnaround = %v", m)
	}
}

func TestFacadeNewRunConfigDerivesLambda(t *testing.T) {
	cfg := NewRunConfig(Het, LowAvail, RR, 25000, 0.9)
	gc := DefaultGridConfig(Het, LowAvail)
	want := LambdaForUtilization(0.9, cfg.Workload.AppSize, EffectivePower(gc, DefaultCheckpointConfig()))
	if cfg.Workload.Lambda != want {
		t.Fatalf("lambda = %v, want %v", cfg.Workload.Lambda, want)
	}
}

func TestFacadeFigure(t *testing.T) {
	fig, err := FigureByID("F1a")
	if err != nil {
		t.Fatal(err)
	}
	o := QuickOptions(1)
	o.Granularities = []float64{1000}
	o.Policies = []Policy{FCFSShare}
	o.MinReps, o.MaxReps = 2, 2
	o.NumBoTs, o.Warmup = 20, 2
	fr, err := RunFigure(fig, o)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fr.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "FCFS-Share") {
		t.Fatal("figure table missing policy column")
	}
}

func TestFacadeTrace(t *testing.T) {
	rec := NewTraceRecorder(100)
	cfg := NewRunConfig(Hom, AlwaysUp, RR, 1000, 0.5)
	cfg.NumBoTs, cfg.Warmup = 5, 0
	cfg.Observer = rec
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("trace recorder captured nothing")
	}
}

func TestFacadeConstantsDistinct(t *testing.T) {
	pols := map[Policy]bool{}
	for _, p := range AllPolicies {
		if pols[p] {
			t.Fatalf("duplicate policy constant %v", p)
		}
		pols[p] = true
	}
	if len(PaperPolicies) != 5 {
		t.Fatalf("PaperPolicies has %d entries, want 5", len(PaperPolicies))
	}
	if len(Figures) != 12 {
		t.Fatalf("Figures has %d entries, want 12", len(Figures))
	}
	if len(DefaultGranularities) != 4 {
		t.Fatalf("DefaultGranularities has %d entries, want 4", len(DefaultGranularities))
	}
	if _, err := ParsePolicy("LongIdle"); err != nil {
		t.Fatal(err)
	}
}

func TestWorkloadGeneratorMatchesRun(t *testing.T) {
	cfg := NewRunConfig(Hom, AlwaysUp, FCFSShare, 1000, 0.5)
	cfg.Grid.TotalPower = 100
	cfg.Workload.AppSize = 10000
	cfg.Workload.Lambda = LambdaForUtilization(0.5, 10000,
		EffectivePower(cfg.Grid, DefaultCheckpointConfig()))
	cfg.NumBoTs = 10
	cfg.Warmup = 0
	gen, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Replaying the regenerated stream must be bit-identical.
	replay := cfg
	replay.Bots = NewWorkloadGenerator(cfg.Workload, cfg.Seed).Take(cfg.NumBoTs)
	rep, err := Run(replay)
	if err != nil {
		t.Fatal(err)
	}
	if gen.MeanTurnaround() != rep.MeanTurnaround() || gen.Completed != rep.Completed {
		t.Fatalf("replay diverged: %v vs %v", gen.MeanTurnaround(), rep.MeanTurnaround())
	}
}

func TestRunDistributedFacade(t *testing.T) {
	gc := DefaultGridConfig(Hom, HighAvail)
	gc.TotalPower = 100
	res, err := RunDistributed(DistributedConfig{
		Seed:     1,
		Grid:     gc,
		Sites:    2,
		Dispatch: RoundRobinSite,
		Policy:   FCFSShare,
		Workload: WorkloadConfig{
			Granularities: []float64{1000},
			AppSize:       20000,
			Spread:        0.5,
			Lambda: LambdaForUtilization(0.5, 20000,
				EffectivePower(gc, DefaultCheckpointConfig())),
		},
		NumBoTs: 20,
		Warmup:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 20 || res.Saturated {
		t.Fatalf("completed=%d saturated=%v", res.Completed, res.Saturated)
	}
}
