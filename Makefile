# botgrid build/test entry points.
#
#   make build   compile every package and command
#   make test    run the full test suite
#   make race    run the full suite under the race detector
#   make vet     static checks
#   make bench   dispatch-decision micro-benchmarks
#   make check   everything the CI gate runs

GO ?= go

.PHONY: all build test race vet bench check clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench BenchmarkDispatchDecision -benchmem -run '^$$' ./internal/core/

check: build vet test race

clean:
	$(GO) clean ./...
