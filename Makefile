# botgrid build/test entry points.
#
#   make build   compile every package and command
#   make test    run the full test suite
#   make race    run the full suite under the race detector
#   make vet     static checks
#   make lint    botlint, the in-tree analysis suite, all eight rules:
#                determinism, lock discipline, lock ordering, atomic
#                access, hot-path hygiene, the compiler-backed escape
#                gate, wire/JSON protocol parity and error strictness
#                (see DESIGN.md "Static guarantees")
#   make escape-gate  just the escape rule: go build -gcflags=-m over the
#                module, failing on heap escapes in //botlint:hotpath
#                functions (the CI lint job runs this even when the unit
#                tests are skipped)
#   make bench   dispatch-decision, DES event-loop, journal
#                (append + recovery-replay) and wire-codec
#                micro-benchmarks, recorded to BENCH_sched.json; fails if
#                any dispatch-decision or wire encode/decode benchmark —
#                including the fsync=off journaled twin —
#                reports a nonzero allocs/op. Then the whole-simulation
#                replication suite (ladder engine vs the pre-ladder heap
#                baseline, each engine in its own process so GC pacing
#                starts equal, 3 runs per cell, medians) recorded as
#                events/sec per configuration to BENCH_des.json, plus the
#                ladder-only scale cells (100k/250k/1M machines, 10k
#                concurrent bags, utilization at and past 1) and the
#                parallel sweep-engine scaling series (reps/sec at
#                1/2/4/8 workers; on a single-core host the series reads
#                as pool overhead-neutrality — see the "cpus" metric)
#   make bench-serve  sustained dispatch throughput of the live sharded
#                service: botload in-process at shards 1/2/4/8 over both
#                transports (JSON/HTTP and the binary wire protocol),
#                100k simulated worker identities multiplexed over 256
#                driver goroutines, recorded side by side to
#                BENCH_serve.json (dispatch/s, fetch p99, cpus). On a
#                single-core host the trajectory shows lock-contention
#                relief, not wall-clock speedup; the "cpus" metric
#                records what parallelism the numbers were measured at
#                (see DESIGN.md "Sharded dispatch" and "Wire protocol")
#   make check   everything the CI gate runs

GO ?= go

.PHONY: all build test race vet lint escape-gate bench bench-serve check clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/botlint ./...

escape-gate:
	$(GO) run ./cmd/botlint -only escape ./...

bench:
	@{ $(GO) test -bench BenchmarkDispatchDecision -benchmem -run '^$$' ./internal/core/ && \
	   $(GO) test -bench 'BenchmarkEventLoop|BenchmarkScheduleCancel' -benchmem -run '^$$' ./internal/des/ && \
	   $(GO) test -bench 'BenchmarkDispatchDecision|BenchmarkJournalAppend|BenchmarkRecoveryReplay' -benchmem -run '^$$' ./internal/journal/ && \
	   $(GO) test -bench 'BenchmarkWireEncode|BenchmarkWireDecode' -benchmem -run '^$$' ./internal/wire/ ; } \
	 | tee bench.out
	$(GO) run ./cmd/benchjson -require-zero-allocs '^(BenchmarkDispatchDecision|BenchmarkWireEncode|BenchmarkWireDecode)' < bench.out > BENCH_sched.json
	@rm -f bench.out
	@echo "wrote BENCH_sched.json"
	@{ $(GO) test -bench '^BenchmarkReplication$$' -benchmem -benchtime 1x -count 3 -timeout 60m -run '^$$' ./internal/core/ && \
	   $(GO) test -bench '^BenchmarkReplicationBaselineHeap$$' -benchmem -benchtime 1x -count 3 -timeout 60m -run '^$$' ./internal/core/ && \
	   $(GO) test -bench '^BenchmarkReplicationScale$$' -benchmem -benchtime 1x -count 3 -timeout 60m -run '^$$' ./internal/core/ && \
	   $(GO) test -bench '^BenchmarkSweep$$' -benchmem -benchtime 1x -count 3 -timeout 60m -run '^$$' ./internal/experiment/ ; } \
	 | tee benchdes.out
	$(GO) run ./cmd/benchjson -median < benchdes.out > BENCH_des.json
	@rm -f benchdes.out
	@echo "wrote BENCH_des.json"

bench-serve:
	@rm -f benchserve.out
	@for n in 1 2 4 8; do \
	   for t in "" "-wire"; do \
	     $(GO) run ./cmd/botload -addr "" -policy FairShare -shards $$n $$t \
	       -workers 100000 -drivers 256 -bags 16 -tasks 500 -timescale 0 \
	       -duration 10s -bench | tee -a benchserve.out ; \
	   done ; \
	 done
	$(GO) run ./cmd/benchjson < benchserve.out > BENCH_serve.json
	@rm -f benchserve.out
	@echo "wrote BENCH_serve.json"

check: build vet lint test race

clean:
	$(GO) clean ./...
