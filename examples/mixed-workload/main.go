// Mixed workload: the paper's first future-work direction — "workloads in
// which BoT of different types (i.e., characterized by different task
// granularities) will simultaneously be submitted to the scheduler". This
// example submits all four BoT types at once on a heterogeneous grid and
// compares how each policy treats each class, exposing the per-class
// fairness trade-off: round-robin's bag-granularity sharing penalizes
// many-task (fine-grained) bags that need many machine slots to finish,
// while FCFS-Share and LongIdle drain them quickly at the expense of the
// coarse-grained classes.
//
// Run with:
//
//	go run ./examples/mixed-workload
package main

import (
	"fmt"
	"log"
	"sort"

	"botgrid"
)

func main() {
	fmt.Println("Mixed-granularity workload on Het-MedAvail (U = 0.75)")
	fmt.Println()
	for _, pol := range []botgrid.Policy{botgrid.FCFSShare, botgrid.RR, botgrid.LongIdle} {
		cfg := botgrid.NewRunConfig(botgrid.Het, botgrid.MedAvail, pol,
			1000, botgrid.MediumIntensity)
		cfg.Workload.Granularities = botgrid.DefaultGranularities
		cfg.Seed = 5
		cfg.NumBoTs = 60
		cfg.Warmup = 10
		res, err := botgrid.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}

		perGran := map[float64][]float64{}
		for _, b := range res.Bags {
			perGran[b.Granularity] = append(perGran[b.Granularity], b.Turnaround)
		}
		grans := make([]float64, 0, len(perGran))
		for g := range perGran {
			grans = append(grans, g)
		}
		sort.Float64s(grans)

		fmt.Printf("%s (overall mean %.0f s, saturated=%v):\n",
			pol, res.MeanTurnaround(), res.Saturated)
		for _, g := range grans {
			ts := perGran[g]
			sum := 0.0
			for _, x := range ts {
				sum += x
			}
			fmt.Printf("  granularity %-7.0f %2d bags  mean turnaround %8.0f s\n",
				g, len(ts), sum/float64(len(ts)))
		}
		fmt.Println()
	}
}
