// Quickstart: simulate one Desktop Grid scenario and print the scheduling
// metrics the paper reports (waiting time, makespan, turnaround).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"botgrid"
)

func main() {
	// A heterogeneous enterprise grid (≈100 machines, 98 % availability)
	// receiving 30 Bag-of-Tasks applications of 500 tasks each, scheduled
	// with the LongIdle knowledge-free policy at 75 % target utilization.
	cfg := botgrid.NewRunConfig(botgrid.Het, botgrid.HighAvail, botgrid.LongIdle,
		5000 /* task granularity, reference seconds */, botgrid.MediumIntensity)
	cfg.Seed = 2024
	cfg.NumBoTs = 30
	cfg.Warmup = 5

	res, err := botgrid.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("simulated %d BoT applications on %s (policy %s)\n",
		res.Completed, cfg.Grid.Name(), cfg.Policy)
	fmt.Printf("tasks completed: %d (replicas started: %d, lost to failures: %d)\n",
		res.TasksCompleted, res.ReplicasStarted, res.ReplicaFailures)
	fmt.Printf("mean turnaround over %d measured bags: %.0f s\n\n",
		len(res.Bags), res.MeanTurnaround())

	fmt.Println("  bag  tasks  waiting(s)  makespan(s)  turnaround(s)")
	for _, b := range res.Bags {
		fmt.Printf("  %-4d %-6d %-11.0f %-12.0f %.0f\n",
			b.ID, b.NumTasks, b.Waiting, b.Makespan, b.Turnaround)
	}
}
