// Trace replay: bit-exact reproducibility experiments. This example
// generates a workload trace and an availability trace once, then replays
// the *identical* arrivals and the *identical* machine failures under
// every bag-selection policy — removing all stochastic variation from the
// comparison, the simulation analogue of paired experiments. It finishes
// by contrasting kill-and-resubmit with BOINC-style suspend-and-resume on
// the same traces.
//
// Run with:
//
//	go run ./examples/trace-replay
package main

import (
	"bytes"
	"fmt"
	"log"

	"botgrid"
)

func main() {
	// Generate the two traces once via a throwaway run.
	base := botgrid.NewRunConfig(botgrid.Hom, botgrid.LowAvail, botgrid.FCFSShare,
		25000, botgrid.LowIntensity)
	base.Grid.TotalPower = 100 // 10 machines, quick
	base.Workload.AppSize = 250000
	base.Workload.Lambda = botgrid.LambdaForUtilization(0.5, 250000,
		botgrid.EffectivePower(base.Grid, botgrid.DefaultCheckpointConfig()))
	base.NumBoTs = 12
	base.Warmup = 2
	base.Seed = 99

	bots, avail := captureTraces(base)
	fmt.Printf("captured traces: %d bags, %d availability events\n\n", len(bots), len(avail))

	// Round-trip both traces through their file formats to demonstrate
	// portability.
	var wbuf, abuf bytes.Buffer
	if err := botgrid.WriteWorkloadTrace(&wbuf, bots); err != nil {
		log.Fatal(err)
	}
	bots, _ = botgrid.ReadWorkloadTrace(&wbuf)
	if err := botgrid.WriteAvailTrace(&abuf, avail); err != nil {
		log.Fatal(err)
	}
	avail, _ = botgrid.ReadAvailTrace(&abuf)

	fmt.Println("policy comparison on identical arrivals and failures:")
	for _, pol := range botgrid.PaperPolicies {
		cfg := base
		cfg.Policy = pol
		cfg.Bots = bots
		cfg.AvailTrace = avail
		res, err := botgrid.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s mean turnaround %8.0f s  (failures %d)\n",
			pol, res.MeanTurnaround(), res.ReplicaFailures)
	}

	fmt.Println("\nfailure semantics on the same traces (RR):")
	for _, suspend := range []bool{false, true} {
		cfg := base
		cfg.Policy = botgrid.RR
		cfg.Bots = bots
		cfg.AvailTrace = avail
		cfg.Sched.SuspendOnFailure = suspend
		res, err := botgrid.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		mode := "kill+resubmit"
		if suspend {
			mode = "suspend+resume"
		}
		fmt.Printf("  %-14s mean turnaround %8.0f s  (replicas/task %.2f)\n",
			mode, res.MeanTurnaround(),
			float64(res.ReplicasStarted)/float64(res.TasksCompleted))
	}
}

// captureTraces runs the base scenario once, recording the BoT stream and
// every machine availability transition.
func captureTraces(cfg botgrid.RunConfig) ([]*botgrid.BoT, []botgrid.AvailEvent) {
	rec := botgrid.NewTraceRecorder(0)
	cfg.Observer = rec
	res, err := botgrid.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if res.Completed == 0 {
		log.Fatal("capture run completed nothing")
	}
	// Rebuild the BoT stream deterministically (same seed, same streams
	// as the run used) and convert the trace's machine events.
	bots := regenerateBots(cfg)
	var avail []botgrid.AvailEvent
	for _, e := range rec.Events() {
		switch e.Kind {
		case "machine-failed":
			avail = append(avail, botgrid.AvailEvent{Time: e.Time, Machine: e.Machine, Up: false})
		case "machine-repaired":
			avail = append(avail, botgrid.AvailEvent{Time: e.Time, Machine: e.Machine, Up: true})
		}
	}
	return bots, avail
}

func regenerateBots(cfg botgrid.RunConfig) []*botgrid.BoT {
	// The facade intentionally hides the generator internals; replaying
	// through RunConfig.Seed keeps streams aligned, so capturing the
	// stream is a matter of re-running the generator with the same seed.
	gen := botgrid.NewWorkloadGenerator(cfg.Workload, cfg.Seed)
	return gen.Take(cfg.NumBoTs)
}
