// Enterprise grid: the paper's high-availability scenario (§4.3,
// "high-availability configurations can be assimilated to Enterprise
// Desktop Grids"). This example compares all five knowledge-free policies
// on a stable 98 %-availability grid for a small and a large task
// granularity, showing the ranking reversal the paper reports: FCFS-based
// policies win for fine-grained bags, RR-based for coarse-grained ones.
//
// Run with:
//
//	go run ./examples/enterprise-grid
package main

import (
	"fmt"
	"log"

	"botgrid"
)

func main() {
	fmt.Println("Enterprise Desktop Grid (Hom-HighAvail, U = 0.75)")
	fmt.Println()
	for _, gran := range []float64{1000, 125000} {
		fmt.Printf("task granularity %.0f s (%.0f tasks per bag):\n",
			gran, 2.5e6/gran)
		for _, pol := range botgrid.PaperPolicies {
			cfg := botgrid.NewRunConfig(botgrid.Hom, botgrid.HighAvail, pol,
				gran, botgrid.MediumIntensity)
			cfg.Seed = 7
			cfg.NumBoTs = 40
			cfg.Warmup = 8
			res, err := botgrid.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			if res.Saturated {
				fmt.Printf("  %-10s SATURATED (completed %d/%d)\n",
					pol, res.Completed, cfg.NumBoTs)
				continue
			}
			fmt.Printf("  %-10s mean turnaround %8.0f s  (replicas/task %.2f)\n",
				pol, res.MeanTurnaround(),
				float64(res.ReplicasStarted)/float64(res.TasksCompleted))
		}
		fmt.Println()
	}
	fmt.Println("Note the reversal: FCFS-based policies dominate at 1000 s granularity,")
	fmt.Println("while exclusive FCFS collapses at 125000 s where bags hold only 20 tasks")
	fmt.Println("and hoarding all 100 machines for useless replicas starves the queue.")
}
