// Live grid: the knowledge-free policies running as a real scheduler
// rather than a simulation. This example starts the work-dispatch server
// in-process, spins up 50 simulated HTTP workers — some of which fail
// tasks and some of which crash silently, exercising the lease path —
// submits six Bags-of-Tasks and prints each bag's turnaround as it
// drains, followed by the dispatch-latency percentiles.
//
// Time is compressed: one reference second of task work is 20 µs of wall
// time, so the whole run takes about a second.
//
// Run with:
//
//	go run ./examples/live-grid
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"botgrid/internal/core"
	"botgrid/internal/rng"
	"botgrid/internal/serve"
)

const (
	numWorkers = 50
	numBags    = 6
	bagTasks   = 100
	timeScale  = 2e-5 // 1 reference second = 20 µs wall
)

func main() {
	srv, err := serve.NewServer(serve.Config{
		Policy:     core.LongIdle,
		MaxWorkers: numWorkers,
		Lease:      60 * time.Millisecond,
		RetryMs:    1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	defer hs.Close()
	c := serve.NewClient("http://" + ln.Addr().String())
	fmt.Printf("live grid: policy LongIdle, %d workers on http://%s/\n", numWorkers, ln.Addr())

	// The fleet: most workers are reliable, every tenth one fails 20 % of
	// its tasks, and two crash outright on their first assignment — their
	// leases expire and the scheduler resubmits the hostage tasks, exactly
	// the paper's machine-failure handling.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < numWorkers; i++ {
		cfg := serve.WorkerConfig{
			ID:        fmt.Sprintf("lw%02d", i),
			TimeScale: timeScale,
			Poll:      time.Millisecond,
		}
		switch {
		case i < 2:
			cfg.CrashProb = 1
		case i%10 == 0:
			cfg.FailProb = 0.2
		}
		w := serve.NewSimWorker(c, cfg, rng.Root(5, fmt.Sprintf("live-grid-%d", i)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(ctx); err != nil {
				log.Printf("worker: %v", err)
			}
		}()
	}

	// Six simultaneous bags with U[0.5X, 1.5X] task durations, X = 2000.
	str := rng.Root(5, "live-grid-works")
	for i := 0; i < numBags; i++ {
		works := make([]float64, bagTasks)
		for j := range works {
			works[j] = str.Uniform(1000, 3000)
		}
		if _, err := c.Submit(2000, works); err != nil {
			log.Fatal(err)
		}
	}

	// Watch the bags drain, announcing each completion once.
	fmt.Println("\nper-bag turnarounds:")
	announced := make(map[int]bool)
	for len(announced) < numBags {
		st, err := c.Stats()
		if err != nil {
			log.Fatal(err)
		}
		for _, b := range st.Bags {
			if b.Completed && !announced[b.Bag] {
				announced[b.Bag] = true
				fmt.Printf("  bag %d: %d tasks done in %.3fs wall = %.0f reference seconds\n",
					b.Bag, b.Tasks, b.Turnaround, b.Turnaround/timeScale)
			}
		}
		if ctx.Err() != nil {
			log.Fatalf("timed out: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	wg.Wait()

	st, err := c.Stats()
	if err != nil {
		log.Fatal(err)
	}
	d := st.DecisionLatency
	fmt.Printf("\nfault tolerance: %d failed replicas resubmitted, %d lease expiries, %d sibling replicas killed\n",
		st.ReplicaFailures, st.LeaseExpiries, st.ReplicasKilled)
	fmt.Printf("dispatch: %d replicas started for %d completions; decision latency p50 %.1fµs p99 %.1fµs\n",
		st.ReplicasStarted, st.TasksCompleted, d.P50*1e6, d.P99*1e6)
}
