// Volunteer grid: the paper's low-availability scenario (§4.3,
// "low-availability configurations can be assimilated to volunteer-
// computing Desktop Grids, where hosts come and go unpredictably"). This
// example runs coarse-grained bags on a 50 %-availability grid and uses a
// trace recorder to show WQR-FT's fault tolerance at work: machine
// failures killing replicas, checkpoint saves bounding the lost work, and
// resubmitted tasks resuming from the checkpoint server.
//
// Run with:
//
//	go run ./examples/volunteer-grid
package main

import (
	"fmt"
	"log"
	"os"

	"botgrid"
)

func main() {
	rec := botgrid.NewTraceRecorder(0)
	cfg := botgrid.NewRunConfig(botgrid.Het, botgrid.LowAvail, botgrid.RR,
		25000, botgrid.LowIntensity)
	cfg.Seed = 11
	cfg.NumBoTs = 15
	cfg.Warmup = 3
	cfg.Observer = rec

	res, err := botgrid.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("volunteer grid %s: %d bags completed, %.0f s mean turnaround\n",
		cfg.Grid.Name(), res.Completed, res.MeanTurnaround())
	fmt.Printf("fault tolerance: %d replicas lost to failures, %d checkpoint saves, %d retrievals\n\n",
		res.ReplicaFailures, res.CheckpointSaves, res.CheckpointRetrieves)

	counts := rec.CountByKind()
	fmt.Println("event counts:")
	for _, k := range []string{"machine-failed", "machine-repaired", "replica-started",
		"replica-failed", "checkpoint-saved", "task-completed", "bag-completed"} {
		fmt.Printf("  %-18s %d\n", k, countFor(counts, k))
	}

	// Print the first failure-recovery episode from the trace: a replica
	// failure followed by its restart.
	fmt.Println("\nfirst failure-recovery episodes from the trace:")
	shown := 0
	for _, e := range rec.Events() {
		if e.Kind == "replica-failed" || (e.Kind == "replica-started" && e.Detail == "restart") ||
			e.Kind == "checkpoint-saved" {
			fmt.Println(" ", e)
			shown++
			if shown >= 12 {
				break
			}
		}
	}
	if shown == 0 {
		fmt.Fprintln(os.Stderr, "no failures observed (unexpected under LowAvail)")
		os.Exit(1)
	}
}

func countFor[K ~string](m map[K]int, k string) int { return m[K(k)] }
