package main

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"botgrid/internal/core"
	"botgrid/internal/grid"
	"botgrid/internal/rng"
	"botgrid/internal/workload"
)

func TestParseHeterogeneity(t *testing.T) {
	cases := map[string]grid.Heterogeneity{
		"hom": grid.Hom, "HOM": grid.Hom, "het": grid.Het, "Het": grid.Het,
	}
	for in, want := range cases {
		got, err := parseHeterogeneity(in)
		if err != nil || got != want {
			t.Fatalf("parseHeterogeneity(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseHeterogeneity("mixed"); err == nil {
		t.Fatal("accepted unknown heterogeneity")
	}
}

func TestParseAvailability(t *testing.T) {
	cases := map[string]grid.Availability{
		"high": grid.HighAvail, "med": grid.MedAvail, "medium": grid.MedAvail,
		"low": grid.LowAvail, "always": grid.AlwaysUp, "none": grid.AlwaysUp,
	}
	for in, want := range cases {
		got, err := parseAvailability(in)
		if err != nil || got != want {
			t.Fatalf("parseAvailability(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseAvailability("flaky"); err == nil {
		t.Fatal("accepted unknown availability")
	}
}

func TestParseOrder(t *testing.T) {
	cases := map[string]core.TaskOrder{
		"arbitrary": core.ArbitraryOrder, "wqr": core.ArbitraryOrder,
		"longest": core.LongestFirst, "LPT": core.LongestFirst,
		"shortest": core.ShortestFirst, "spt": core.ShortestFirst,
	}
	for in, want := range cases {
		got, err := parseOrder(in)
		if err != nil || got != want {
			t.Fatalf("parseOrder(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseOrder("random"); err == nil {
		t.Fatal("accepted unknown order")
	}
}

func TestTraceFileHelpers(t *testing.T) {
	dir := t.TempDir()
	wlPath := filepath.Join(dir, "wl.jsonl")
	gen := workload.NewGenerator(workload.Config{
		Granularities: []float64{1000},
		AppSize:       5000,
		Spread:        0.5,
		Lambda:        1e-3,
	}, rng.Root(1, "tasks"), rng.Root(1, "arrivals"))
	bots := gen.Take(3)
	if err := writeFile(wlPath, func(w io.Writer) error {
		return workload.WriteTrace(w, bots)
	}); err != nil {
		t.Fatal(err)
	}
	back, err := readWorkload(wlPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("read %d bots, want 3", len(back))
	}
	if _, err := readWorkload(filepath.Join(dir, "missing.jsonl")); err == nil {
		t.Fatal("missing file accepted")
	}

	avPath := filepath.Join(dir, "avail.jsonl")
	events := []grid.AvailEvent{{Time: 1, Machine: 0, Up: false}}
	f, err := os.Create(avPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := grid.WriteAvailTrace(f, events); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := readAvail(avPath)
	if err != nil || len(got) != 1 || got[0] != events[0] {
		t.Fatalf("readAvail = %v, %v", got, err)
	}
	if _, err := readAvail(filepath.Join(dir, "missing2.jsonl")); err == nil {
		t.Fatal("missing avail file accepted")
	}
}
