// Command botsim runs a single Desktop Grid simulation and reports per-bag
// and aggregate statistics, optionally dumping a structured event trace.
//
// Examples:
//
//	botsim -grid het -avail low -gran 25000 -util 0.9 -policy RR -bots 50
//	botsim -gran 1000 -policy FCFS-Share -trace /tmp/trace.txt
//	botsim -gran 5000 -policy LongIdle -trace-json /tmp/trace.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"botgrid/internal/checkpoint"
	"botgrid/internal/core"
	"botgrid/internal/grid"
	"botgrid/internal/rng"
	"botgrid/internal/stats"
	"botgrid/internal/trace"
	"botgrid/internal/workload"
)

func main() {
	var (
		gridKind  = flag.String("grid", "hom", "machine heterogeneity: hom|het")
		avail     = flag.String("avail", "high", "availability: high|med|low|always")
		policy    = flag.String("policy", "FCFS-Share", "bag-selection policy (FCFS-Excl, FCFS-Share, RR, RR-NRF, LongIdle, Random, FairShare, SJF-KB)")
		gran      = flag.Float64("gran", 5000, "task granularity in reference seconds")
		util      = flag.Float64("util", 0.5, "target grid utilization in (0,1)")
		lambda    = flag.Float64("lambda", 0, "explicit arrival rate (overrides -util)")
		appSize   = flag.Float64("appsize", workload.DefaultAppSize, "application size in reference seconds")
		power     = flag.Float64("power", 1000, "total grid computing power")
		bots      = flag.Int("bots", 100, "number of BoT arrivals")
		warmup    = flag.Int("warmup", 10, "completed bags to discard from statistics")
		seed      = flag.Uint64("seed", 1, "random seed")
		threshold = flag.Int("threshold", 2, "WQR-FT replication threshold")
		dynRep    = flag.Bool("dynrep", false, "enable dynamic replication")
		fastest   = flag.Bool("fastest", false, "knowledge-based fastest-machine-first dispatch")
		order     = flag.String("order", "arbitrary", "within-bag task order: arbitrary|longest|shortest")
		noCkpt    = flag.Bool("nockpt", false, "disable checkpointing (plain WQR)")
		suspend   = flag.Bool("suspend", false, "BOINC-style suspend/resume failure semantics")
		traceTxt  = flag.String("trace", "", "write a human-readable event trace to this file")
		traceJSON = flag.String("trace-json", "", "write a JSON Lines event trace to this file")
		perBag    = flag.Bool("perbag", false, "print one line per completed bag")
		wlIn      = flag.String("workload-in", "", "replay a JSONL BoT trace instead of generating one")
		wlOut     = flag.String("workload-out", "", "write the generated BoT stream to this JSONL file")
		availIn   = flag.String("avail-in", "", "replay a JSONL machine-availability trace")
	)
	flag.Parse()

	h, err := parseHeterogeneity(*gridKind)
	if err != nil {
		fatal(err)
	}
	a, err := parseAvailability(*avail)
	if err != nil {
		fatal(err)
	}
	pol, err := core.ParsePolicy(*policy)
	if err != nil {
		fatal(err)
	}
	taskOrder, err := parseOrder(*order)
	if err != nil {
		fatal(err)
	}

	gc := grid.DefaultConfig(h, a)
	gc.TotalPower = *power
	cc := checkpoint.DefaultConfig()
	cc.Enabled = !*noCkpt

	lam := *lambda
	if lam <= 0 {
		lam = workload.LambdaForUtilization(*util, *appSize, core.EffectivePower(gc, cc))
	}

	var rec *trace.Recorder
	var obs core.Observer
	if *traceTxt != "" || *traceJSON != "" {
		rec = trace.New(0)
		obs = rec
	}

	cfg := core.RunConfig{
		Seed: *seed,
		Grid: gc,
		Workload: workload.Config{
			Granularities: []float64{*gran},
			AppSize:       *appSize,
			Spread:        workload.DefaultSpread,
			Lambda:        lam,
		},
		Policy: pol,
		Sched: core.SchedConfig{
			Threshold:           *threshold,
			TaskOrder:           taskOrder,
			DynamicReplication:  *dynRep,
			FastestMachineFirst: *fastest,
			SuspendOnFailure:    *suspend,
		},
		Checkpoint: cc,
		NumBoTs:    *bots,
		Warmup:     *warmup,
		Observer:   obs,
	}
	switch {
	case *wlIn != "":
		bots, err := readWorkload(*wlIn)
		if err != nil {
			fatal(err)
		}
		cfg.Bots = bots
	case *wlOut != "":
		// Materialize the exact stream the run would generate, so the
		// written file reproduces this run bit-for-bit when replayed.
		gen := workload.NewGenerator(cfg.Workload,
			rng.Root(cfg.Seed, "tasks"), rng.Root(cfg.Seed, "arrivals"))
		cfg.Bots = gen.Take(cfg.NumBoTs)
		if err := writeFile(*wlOut, func(w io.Writer) error {
			return workload.WriteTrace(w, cfg.Bots)
		}); err != nil {
			fatal(err)
		}
		fmt.Printf("workload    %d bags -> %s\n", len(cfg.Bots), *wlOut)
	}
	if *availIn != "" {
		events, err := readAvail(*availIn)
		if err != nil {
			fatal(err)
		}
		cfg.AvailTrace = events
	}

	res, err := core.Run(cfg)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("scenario    %s  policy=%s  gran=%.0f  lambda=%.3e (U target %.2f)\n",
		gc.Name(), pol, *gran, lam, *util)
	fmt.Printf("bags        submitted=%d completed=%d collected=%d saturated=%v\n",
		res.Submitted, res.Completed, len(res.Bags), res.Saturated)
	fmt.Printf("tasks       completed=%d replicas=%d killed-siblings=%d failures=%d suspensions=%d\n",
		res.TasksCompleted, res.ReplicasStarted, res.ReplicasKilled, res.ReplicaFailures, res.Suspensions)
	fmt.Printf("checkpoints saves=%d retrieves=%d\n", res.CheckpointSaves, res.CheckpointRetrieves)
	fmt.Printf("simulation  t_end=%.0f s  events=%d\n", res.SimEnd, res.EventsFired)

	var turn, wait, mk stats.Accumulator
	for _, b := range res.Bags {
		turn.Add(b.Turnaround)
		wait.Add(b.Waiting)
		mk.Add(b.Makespan)
	}
	if turn.N() > 0 {
		ci := turn.CI(0.95)
		fmt.Printf("turnaround  mean=%.0f ± %.0f (95%% CI, n=%d)  min=%.0f max=%.0f\n",
			ci.Mean, ci.HalfWidth, turn.N(), turn.Min(), turn.Max())
		fmt.Printf("breakdown   waiting=%.0f  makespan=%.0f\n", wait.Mean(), mk.Mean())
	} else {
		fmt.Println("turnaround  no bags completed after warmup")
	}
	if *perBag {
		fmt.Println("\n  bag  gran    tasks  arrival    waiting   makespan  turnaround")
		for _, b := range res.Bags {
			fmt.Printf("  %-4d %-7.0f %-6d %-10.0f %-9.0f %-9.0f %.0f\n",
				b.ID, b.Granularity, b.NumTasks, b.Arrival, b.Waiting, b.Makespan, b.Turnaround)
		}
	}

	if rec != nil {
		if *traceTxt != "" {
			if err := writeFile(*traceTxt, rec.WriteText); err != nil {
				fatal(err)
			}
			fmt.Printf("trace       %d events -> %s\n", rec.Len(), *traceTxt)
		}
		if *traceJSON != "" {
			if err := writeFile(*traceJSON, rec.WriteJSONL); err != nil {
				fatal(err)
			}
			fmt.Printf("trace       %d events -> %s\n", rec.Len(), *traceJSON)
		}
	}
}

func parseHeterogeneity(s string) (grid.Heterogeneity, error) {
	switch strings.ToLower(s) {
	case "hom":
		return grid.Hom, nil
	case "het":
		return grid.Het, nil
	}
	return 0, fmt.Errorf("botsim: unknown grid kind %q (hom|het)", s)
}

func parseAvailability(s string) (grid.Availability, error) {
	switch strings.ToLower(s) {
	case "high":
		return grid.HighAvail, nil
	case "med", "medium":
		return grid.MedAvail, nil
	case "low":
		return grid.LowAvail, nil
	case "always", "none":
		return grid.AlwaysUp, nil
	}
	return 0, fmt.Errorf("botsim: unknown availability %q (high|med|low|always)", s)
}

func parseOrder(s string) (core.TaskOrder, error) {
	switch strings.ToLower(s) {
	case "arbitrary", "wqr":
		return core.ArbitraryOrder, nil
	case "longest", "lpt":
		return core.LongestFirst, nil
	case "shortest", "spt":
		return core.ShortestFirst, nil
	}
	return 0, fmt.Errorf("botsim: unknown task order %q (arbitrary|longest|shortest)", s)
}

func writeFile(path string, fn func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return fn(f)
}

func readWorkload(path string) ([]*workload.BoT, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return workload.ReadTrace(f)
}

func readAvail(path string) ([]grid.AvailEvent, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return grid.ReadAvailTrace(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "botsim:", err)
	os.Exit(1)
}
