package main

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestRunInProcess drives a small campaign end to end against an
// in-process server and checks the report covers throughput, both
// latency distributions and the failure counters.
func TestRunInProcess(t *testing.T) {
	o := options{
		policy:   "LongIdle",
		workers:  20,
		power:    10,
		bags:     4,
		tasks:    25,
		work:     100,
		failProb: 0.05,
		lease:    10 * time.Second,
		timeout:  60 * time.Second,
		seed:     3,
	}
	var buf strings.Builder
	if err := run(context.Background(), o, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"policy LongIdle",
		"throughput:",
		"decision latency",
		"fetch RTT",
		"mean bag turnaround:",
		"injected resubmissions",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestRunRejectsBadPolicy(t *testing.T) {
	o := options{policy: "NoSuchPolicy", workers: 1, bags: 1, tasks: 1,
		work: 1, timeout: time.Second}
	if err := run(context.Background(), o, &strings.Builder{}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
