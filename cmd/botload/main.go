// Command botload is the load generator for botserved: it spins up a
// fleet of simulated HTTP workers (with configurable failure and latency
// injection) against a live work-dispatch server, submits a batch of
// Bags-of-Tasks, drives them to completion and reports sustained dispatch
// throughput, fetch round-trip percentiles and the server's own
// scheduling-decision latency percentiles.
//
//	botload -addr 127.0.0.1:8431 -workers 50 -bags 8 -tasks 100
//
// With -addr "" botload starts an in-process server on a loopback port,
// so a single invocation benchmarks the whole dispatch path.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"botgrid/internal/core"
	"botgrid/internal/rng"
	"botgrid/internal/serve"
)

type options struct {
	addr      string
	policy    string
	workers   int
	power     float64
	bags      int
	tasks     int
	work      float64
	timeScale float64
	failProb  float64
	latency   time.Duration
	lease     time.Duration
	timeout   time.Duration
	seed      uint64
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "", "server address; empty starts an in-process server")
	flag.StringVar(&o.policy, "policy", "FCFS-Share", "policy for the in-process server")
	flag.IntVar(&o.workers, "workers", 50, "number of simulated workers")
	flag.Float64Var(&o.power, "power", 10, "worker computing power")
	flag.IntVar(&o.bags, "bags", 8, "bags to submit")
	flag.IntVar(&o.tasks, "tasks", 100, "tasks per bag")
	flag.Float64Var(&o.work, "work", 100, "mean task work X; durations are U[0.5X, 1.5X]")
	flag.Float64Var(&o.timeScale, "timescale", 0, "wall seconds per reference second (0: instant tasks)")
	flag.Float64Var(&o.failProb, "fail", 0.01, "per-task injected failure probability")
	flag.DurationVar(&o.latency, "latency", 0, "injected per-request network latency")
	flag.DurationVar(&o.lease, "lease", 30*time.Second, "lease for the in-process server")
	flag.DurationVar(&o.timeout, "timeout", 5*time.Minute, "overall run timeout")
	flag.Uint64Var(&o.seed, "seed", 7, "seed for workload and failure injection")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, o, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run executes one load-generation campaign and writes the report to w.
func run(ctx context.Context, o options, w io.Writer) error {
	ctx, cancel := context.WithTimeout(ctx, o.timeout)
	defer cancel()

	addr := o.addr
	if addr == "" {
		k, err := core.ParsePolicy(o.policy)
		if err != nil {
			return err
		}
		srv, err := serve.NewServer(serve.Config{
			Policy:      k,
			MaxWorkers:  o.workers,
			WorkerPower: o.power,
			Lease:       o.lease,
			RetryMs:     1,
			Seed:        o.seed,
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: srv}
		go hs.Serve(ln)
		defer hs.Close()
		addr = ln.Addr().String()
		fmt.Fprintf(w, "in-process server: policy %s on %s\n", k, addr)
	}
	c := serve.NewClient("http://" + addr)

	// Submit the workload: o.bags bags of o.tasks tasks with the paper's
	// U[0.5X, 1.5X] durations.
	str := rng.Root(o.seed, "botload-works")
	for i := 0; i < o.bags; i++ {
		works := make([]float64, o.tasks)
		for j := range works {
			works[j] = str.Uniform(0.5*o.work, 1.5*o.work)
		}
		if _, err := c.Submit(o.work, works); err != nil {
			return fmt.Errorf("submit bag %d: %w", i, err)
		}
	}

	// Launch the fleet; every worker feeds one shared RTT recorder.
	rtt := serve.NewLatencyRecorder(1 << 16)
	var wg sync.WaitGroup
	workers := make([]*serve.SimWorker, o.workers)
	for i := range workers {
		sw := serve.NewSimWorker(c, serve.WorkerConfig{
			ID:             fmt.Sprintf("load-%03d", i),
			Power:          o.power,
			TimeScale:      o.timeScale,
			FailProb:       o.failProb,
			RequestLatency: o.latency,
			Poll:           time.Millisecond,
		}, rng.Root(o.seed, fmt.Sprintf("botload-worker-%d", i)))
		sw.RTT = rtt
		workers[i] = sw
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := sw.Run(ctx); err != nil {
				log.Printf("worker error: %v", err)
			}
		}()
	}

	start := time.Now()
	var st serve.StatsResponse
	for {
		var err error
		st, err = c.Stats()
		if err != nil {
			return err
		}
		if st.BagsCompleted >= o.bags {
			break
		}
		if ctx.Err() != nil {
			return fmt.Errorf("run timed out with %d/%d bags complete", st.BagsCompleted, o.bags)
		}
		time.Sleep(20 * time.Millisecond)
	}
	elapsed := time.Since(start)
	cancel()
	wg.Wait()

	report(w, o, st, rtt.Summary(), elapsed)
	return nil
}

// report renders the campaign summary.
func report(w io.Writer, o options, st serve.StatsResponse, rtt serve.LatencySummary, elapsed time.Duration) {
	sec := elapsed.Seconds()
	fmt.Fprintf(w, "\n%d workers, %d bags x %d tasks, policy %s, drained in %.2fs\n",
		o.workers, o.bags, o.tasks, st.Policy, sec)
	fmt.Fprintf(w, "throughput: %.0f completions/s, %.0f dispatches/s sustained\n",
		float64(st.TasksCompleted)/sec, float64(st.ReplicasStarted)/sec)
	d := st.DecisionLatency
	fmt.Fprintf(w, "decision latency (n=%d): p50 %s  p95 %s  p99 %s  max %s\n",
		d.Count, ms(d.P50), ms(d.P95), ms(d.P99), ms(d.Max))
	fmt.Fprintf(w, "fetch RTT        (n=%d): p50 %s  p95 %s  p99 %s  max %s\n",
		rtt.Count, ms(rtt.P50), ms(rtt.P95), ms(rtt.P99), ms(rtt.Max))
	mean := 0.0
	for _, b := range st.Bags {
		mean += b.Turnaround
	}
	mean /= float64(len(st.Bags))
	fmt.Fprintf(w, "mean bag turnaround: %.3fs wall", mean)
	if o.timeScale > 0 {
		fmt.Fprintf(w, " (%.0f reference seconds)", mean/o.timeScale)
	}
	fmt.Fprintf(w, "\nfailures: %d injected resubmissions, %d lease expiries, %d stale reports\n",
		st.ReplicaFailures, st.LeaseExpiries, st.StaleReports)
}

// ms formats a latency expressed in seconds.
func ms(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}
