// Command botload is the load generator for botserved: it spins up a
// fleet of simulated HTTP workers (with configurable failure and latency
// injection) against a live work-dispatch server, submits a batch of
// Bags-of-Tasks, drives them to completion and reports sustained dispatch
// throughput, fetch round-trip percentiles and the server's own
// scheduling-decision latency percentiles.
//
//	botload -addr 127.0.0.1:8431 -workers 50 -bags 8 -tasks 100
//
// With -addr "" botload starts an in-process server on a loopback port,
// so a single invocation benchmarks the whole dispatch path; -shards runs
// that server's dispatch plane sharded.
//
// With -duration set, botload switches from drain-a-batch to sustained
// mode: a feeder keeps the queue topped up, -drivers goroutines multiplex
// the -workers simulated worker identities (so 100k+ workers need only a
// few hundred goroutines), and after a warmup the sustained dispatch rate
// and fetch-RTT percentiles are measured over the window. -bench
// additionally emits the result as a `go test -bench`-format line, which
// `make bench-serve` pipes through benchjson into BENCH_serve.json.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"botgrid/internal/core"
	"botgrid/internal/rng"
	"botgrid/internal/serve"
	"botgrid/internal/wire"
)

type options struct {
	addr      string
	addrs     string
	hammer    bool
	policy    string
	workers   int
	power     float64
	bags      int
	tasks     int
	work      float64
	timeScale float64
	failProb  float64
	latency   time.Duration
	lease     time.Duration
	timeout   time.Duration
	seed      uint64
	shards    int
	duration  time.Duration
	drivers   int
	bench     bool
	wire      bool
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "", "server address; empty starts an in-process server")
	flag.StringVar(&o.addrs, "addrs", "", "comma-separated cluster addresses for -hammer-failover")
	flag.BoolVar(&o.hammer, "hammer-failover", false,
		"drive a replicated cluster instead: tolerate leader redirects and failovers, verify no acked operation is lost")
	flag.StringVar(&o.policy, "policy", "FCFS-Share", "policy for the in-process server")
	flag.IntVar(&o.workers, "workers", 50, "number of simulated workers")
	flag.Float64Var(&o.power, "power", 10, "worker computing power")
	flag.IntVar(&o.bags, "bags", 8, "bags to submit")
	flag.IntVar(&o.tasks, "tasks", 100, "tasks per bag")
	flag.Float64Var(&o.work, "work", 100, "mean task work X; durations are U[0.5X, 1.5X]")
	flag.Float64Var(&o.timeScale, "timescale", 0, "wall seconds per reference second (0: instant tasks)")
	flag.Float64Var(&o.failProb, "fail", 0.01, "per-task injected failure probability")
	flag.DurationVar(&o.latency, "latency", 0, "injected per-request network latency")
	flag.DurationVar(&o.lease, "lease", 30*time.Second, "lease for the in-process server")
	flag.DurationVar(&o.timeout, "timeout", 5*time.Minute, "overall run timeout")
	flag.Uint64Var(&o.seed, "seed", 7, "seed for workload and failure injection")
	flag.IntVar(&o.shards, "shards", 1, "scheduler shards for the in-process server")
	flag.DurationVar(&o.duration, "duration", 0, "sustained mode: measure steady-state throughput over this window instead of draining -bags")
	flag.IntVar(&o.drivers, "drivers", 64, "sustained mode: goroutines multiplexing the -workers identities")
	flag.BoolVar(&o.bench, "bench", false, "sustained mode: also print a go-bench-format result line for benchjson")
	flag.BoolVar(&o.wire, "wire", false, "sustained mode: drive dispatch over the binary wire protocol (batched fetch/report) instead of HTTP")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, o, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run executes one load-generation campaign and writes the report to w.
func run(ctx context.Context, o options, w io.Writer) error {
	ctx, cancel := context.WithTimeout(ctx, o.timeout)
	defer cancel()

	if o.hammer {
		return hammer(ctx, o, w)
	}

	if o.wire && (o.addr != "" || o.duration <= 0) {
		return errors.New("-wire requires sustained mode against the in-process server (-addr \"\" -duration > 0)")
	}
	addr := o.addr
	wireAddr := ""
	if addr == "" {
		k, err := core.ParsePolicy(o.policy)
		if err != nil {
			return err
		}
		srv, err := serve.NewServer(serve.Config{
			Policy:      k,
			MaxWorkers:  o.workers,
			WorkerPower: o.power,
			Lease:       o.lease,
			RetryMs:     1,
			Seed:        o.seed,
			Shards:      o.shards,
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: srv}
		go hs.Serve(ln)
		defer hs.Close()
		addr = ln.Addr().String()
		if o.wire {
			wln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return err
			}
			ws := wire.NewServer(srv.WireHandler())
			go ws.Serve(wln)
			//botlint:ignore errcheck -- best-effort teardown of the load generator's in-process listener on exit
			defer ws.Close()
			wireAddr = wln.Addr().String()
		}
		fmt.Fprintf(w, "in-process server: policy %s, %d shards, on %s\n", k, o.shards, addr)
	}
	c := serve.NewClient("http://" + addr)
	if o.duration > 0 {
		return sustain(ctx, o, w, c, wireAddr)
	}

	// Submit the workload: o.bags bags of o.tasks tasks with the paper's
	// U[0.5X, 1.5X] durations.
	str := rng.Root(o.seed, "botload-works")
	for i := 0; i < o.bags; i++ {
		works := make([]float64, o.tasks)
		for j := range works {
			works[j] = str.Uniform(0.5*o.work, 1.5*o.work)
		}
		if _, err := c.Submit(o.work, works); err != nil {
			return fmt.Errorf("submit bag %d: %w", i, err)
		}
	}

	// Launch the fleet; every worker feeds one shared RTT recorder.
	rtt := serve.NewLatencyRecorder(1 << 16)
	var wg sync.WaitGroup
	workers := make([]*serve.SimWorker, o.workers)
	for i := range workers {
		sw := serve.NewSimWorker(c, serve.WorkerConfig{
			ID:             fmt.Sprintf("load-%03d", i),
			Power:          o.power,
			TimeScale:      o.timeScale,
			FailProb:       o.failProb,
			RequestLatency: o.latency,
			Poll:           time.Millisecond,
		}, rng.Root(o.seed, fmt.Sprintf("botload-worker-%d", i)))
		sw.RTT = rtt
		workers[i] = sw
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := sw.Run(ctx); err != nil {
				log.Printf("worker error: %v", err)
			}
		}()
	}

	start := time.Now()
	var st serve.StatsResponse
	for {
		var err error
		st, err = c.Stats()
		if err != nil {
			return err
		}
		if st.BagsCompleted >= o.bags {
			break
		}
		if ctx.Err() != nil {
			return fmt.Errorf("run timed out with %d/%d bags complete", st.BagsCompleted, o.bags)
		}
		time.Sleep(20 * time.Millisecond)
	}
	elapsed := time.Since(start)
	cancel()
	wg.Wait()

	report(w, o, st, rtt.Summary(), elapsed)
	return nil
}

// sustain is botload's steady-state mode: the queue is kept topped up by
// a feeder, the fleet never drains it, and throughput is measured over a
// fixed window after a warmup. Worker identities are multiplexed over
// o.drivers goroutines, so the worker count scales to 100k+ without 100k
// goroutines: each driver walks its stride of the identity space issuing
// fetch -> (scaled compute) -> report, which is exactly the paper's pull
// cycle with the think time removed.
//
// With wireAddr set (-wire), each driver holds one persistent binary
// connection and walks its stride in batches: up to wireGroup fetches —
// plus the previous group's reports — per round-trip, so the fetch-RTT
// metric measures the batch round-trip a multiplexed worker actually
// waits for. Submits and stats stay on HTTP either way.
func sustain(ctx context.Context, o options, w io.Writer, c *serve.Client, wireAddr string) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	str := rng.Root(o.seed, "botload-works")
	var submitMu sync.Mutex
	submit := func() error {
		submitMu.Lock()
		works := make([]float64, o.tasks)
		for j := range works {
			works[j] = str.Uniform(0.5*o.work, 1.5*o.work)
		}
		submitMu.Unlock()
		_, err := c.Submit(o.work, works)
		return err
	}
	target := o.bags * o.tasks // queue depth the feeder maintains
	for i := 0; i < o.bags; i++ {
		if err := submit(); err != nil {
			return fmt.Errorf("priming submit: %w", err)
		}
	}

	rtt := serve.NewLatencyRecorder(1 << 16)
	var dispatched atomic.Int64
	drivers := o.drivers
	if drivers <= 0 {
		drivers = 64
	}
	if drivers > o.workers {
		drivers = o.workers
	}
	var wg sync.WaitGroup
	for d := 0; d < drivers; d++ {
		wg.Add(1)
		if wireAddr != "" {
			go func(d int) {
				defer wg.Done()
				wireDriver(ctx, o, d, drivers, wireAddr, rtt, &dispatched)
			}(d)
			continue
		}
		go func(d int) {
			defer wg.Done()
			for ctx.Err() == nil {
				for i := d; i < o.workers; i += drivers {
					if ctx.Err() != nil {
						return
					}
					id := fmt.Sprintf("load-%06d", i)
					t0 := time.Now()
					fr, err := c.Fetch(id, o.power)
					if err != nil {
						continue
					}
					rtt.Observe(time.Since(t0))
					if !fr.Assigned {
						continue
					}
					dispatched.Add(1)
					if o.timeScale > 0 {
						time.Sleep(time.Duration(fr.Assignment.Work / o.power * o.timeScale * float64(time.Second)))
					}
					c.Report(id, fr.Assignment.Replica, serve.StatusDone)
				}
			}
		}(d)
	}
	// The feeder tops the queue back up to the priming depth so the fleet
	// never idles on an empty queue mid-window.
	go func() {
		t := time.NewTicker(10 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
			}
			st, err := c.Stats()
			if err != nil {
				continue
			}
			for pending := st.PendingTasks + st.RunningReplicas; pending < target; pending += o.tasks {
				if err := submit(); err != nil {
					break
				}
			}
		}
	}()

	// Warm up (registrations, connection pools, first rebalances), then
	// measure the sustained window.
	warm := o.duration / 5
	if warm > 2*time.Second {
		warm = 2 * time.Second
	}
	if err := sleepCtx(ctx, warm); err != nil {
		return err
	}
	d0 := dispatched.Load()
	st0, err := c.Stats()
	if err != nil {
		return err
	}
	t0 := time.Now()
	if err := sleepCtx(ctx, o.duration); err != nil {
		return err
	}
	d1 := dispatched.Load()
	st1, err := c.Stats()
	if err != nil {
		return err
	}
	elapsed := time.Since(t0).Seconds()
	cancel()
	wg.Wait()

	rate := float64(d1-d0) / elapsed
	sum := rtt.Summary()
	transport := "http"
	if wireAddr != "" {
		transport = "wire"
	}
	fmt.Fprintf(w, "\nsustained %s window, %d workers over %d drivers, %d shards, policy %s, transport %s\n",
		o.duration, o.workers, drivers, o.shards, st1.Policy, transport)
	fmt.Fprintf(w, "dispatch: %.0f/s sustained (%d assignments in window), completions %.0f/s\n",
		rate, d1-d0, float64(st1.TasksCompleted-st0.TasksCompleted)/elapsed)
	fmt.Fprintf(w, "fetch RTT (n=%d): p50 %s  p95 %s  p99 %s  max %s\n",
		sum.Count, ms(sum.P50), ms(sum.P95), ms(sum.P99), ms(sum.Max))
	d := st1.DecisionLatency
	fmt.Fprintf(w, "decision latency (n=%d): p50 %s  p95 %s  p99 %s\n", d.Count, ms(d.P50), ms(d.P95), ms(d.P99))
	if st1.ShardCount > 1 {
		fmt.Fprintf(w, "shards: %d, %d rebalances, %d worker moves\n", st1.ShardCount, st1.Rebalances, st1.WorkerMoves)
	}
	if o.bench {
		// One go-bench-format line so `botload ... -bench | benchjson`
		// lands in the same JSON shape as `go test -bench` suites. The
		// dispatch rate and the p99 fetch RTT are the tracked metrics;
		// cpus records the host parallelism the number was measured at.
		iters := d1 - d0
		if iters < 1 {
			iters = 1
		}
		fmt.Fprintf(w, "goos: %s\ngoarch: %s\n", runtime.GOOS, runtime.GOARCH)
		fmt.Fprintf(w, "BenchmarkServeSustained/policy=%s/shards=%d/transport=%s-%d \t%d\t%.0f ns/op\t%.1f dispatch/s\t%.4f fetch-p99-ms\t%d cpus\n",
			st1.Policy, o.shards, transport, runtime.GOMAXPROCS(0), iters, elapsed*1e9/float64(iters), rate, sum.P99*1e3, runtime.NumCPU())
	}
	return nil
}

// wireGroup is how many of a driver's worker identities share one batch
// round-trip in -wire mode.
const wireGroup = 64

// wireDriver is one driver goroutine's loop over the binary transport:
// walk the stride in groups, one batch per group carrying the previous
// group's done-reports plus this group's fetches. A transport error
// poisons the client (its assignments are re-fetched after redial —
// fetch is idempotent, exactly the HTTP retry story).
func wireDriver(ctx context.Context, o options, d, drivers int, wireAddr string,
	rtt *serve.LatencyRecorder, dispatched *atomic.Int64) {
	ids := make([]string, 0, (o.workers+drivers-1)/drivers)
	for i := d; i < o.workers; i += drivers {
		ids = append(ids, fmt.Sprintf("load-%06d", i))
	}
	var wc *wire.Client
	defer func() {
		if wc != nil {
			//botlint:ignore errcheck -- driver teardown: the connection's fate no longer matters once the load window ends
			wc.Close()
		}
	}()
	repW := make([]string, 0, wireGroup) // workers awaiting a done-report
	repR := make([]uint64, 0, wireGroup) // their replica tokens
	for ctx.Err() == nil {
		if wc == nil {
			var err error
			if wc, err = wire.Dial(wireAddr); err != nil {
				if sleepCtx(ctx, 10*time.Millisecond) != nil {
					return
				}
				continue
			}
			repW, repR = repW[:0], repR[:0]
		}
		for start := 0; start < len(ids) && ctx.Err() == nil; start += wireGroup {
			group := ids[start:min(start+wireGroup, len(ids))]
			b := wc.NewBatch()
			for k := range repW {
				b.Report(repW[k], repR[k], false)
			}
			nrep := len(repW)
			for _, id := range group {
				b.Fetch(id, o.power)
			}
			t0 := time.Now()
			res, err := b.Do()
			if err != nil {
				//botlint:ignore errcheck -- the batch already failed; this close is cleanup before the redial
				wc.Close()
				wc = nil
				break
			}
			rtt.Observe(time.Since(t0))
			repW, repR = repW[:0], repR[:0]
			for k, id := range group {
				f := res[nrep+k].Fetch
				if !f.Assigned {
					continue
				}
				dispatched.Add(1)
				if o.timeScale > 0 {
					time.Sleep(time.Duration(f.Work / o.power * o.timeScale * float64(time.Second)))
				}
				repW = append(repW, id)
				repR = append(repR, f.Replica)
			}
		}
	}
}

// sleepCtx sleeps d or returns early with the context's error.
func sleepCtx(ctx context.Context, d time.Duration) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(d):
		return nil
	}
}

// hammer drives a replicated cluster through failovers: submits are
// retried across leader changes, workers keep fetching and reporting
// through redirects and elections, and at the end the leader's state is
// checked against the client's own books — every acked submit must be a
// completed bag, every acked done-report a completed task. The operator
// (or CI) kills leaders while this runs; hammer itself never does.
func hammer(ctx context.Context, o options, w io.Writer) error {
	if o.addrs == "" {
		return errors.New("-hammer-failover requires -addrs")
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var bases []string
	for _, a := range strings.Split(o.addrs, ",") {
		if a = strings.TrimSpace(a); a != "" {
			bases = append(bases, "http://"+a)
		}
	}
	cc := serve.NewClusterClient(bases)

	// Submit with retries: a submit whose response was lost mid-failover
	// may have landed, so a retry can duplicate the bag — the final wait
	// therefore requires BagsSubmitted == BagsCompleted rather than an
	// exact count. Only acked submissions join the must-survive set.
	str := rng.Root(o.seed, "botload-works")
	acked := 0
	for i := 0; i < o.bags; i++ {
		works := make([]float64, o.tasks)
		for j := range works {
			works[j] = str.Uniform(0.5*o.work, 1.5*o.work)
		}
		for ctx.Err() == nil {
			if _, err := cc.Submit(o.work, works); err != nil {
				time.Sleep(100 * time.Millisecond)
				continue
			}
			acked++
			break
		}
	}
	if acked < o.bags {
		return fmt.Errorf("hammer: submitted %d/%d bags before timeout", acked, o.bags)
	}
	fmt.Fprintf(w, "hammer: %d bags acked by the cluster\n", acked)

	// The fleet: plain pull workers that shrug off dead leaders. An errored
	// report is NOT counted — fetch is idempotent, so if it never landed the
	// next fetch returns the same assignment and the work is redone.
	var ackedDone atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < o.workers; i++ {
		id := fmt.Sprintf("hammer-%03d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				fr, err := cc.Fetch(id, o.power)
				if err != nil {
					time.Sleep(50 * time.Millisecond)
					continue
				}
				if !fr.Assigned {
					time.Sleep(5 * time.Millisecond)
					continue
				}
				if o.timeScale > 0 {
					time.Sleep(time.Duration(fr.Assignment.Work / o.power * o.timeScale * float64(time.Second)))
				}
				ack, err := cc.Report(id, fr.Assignment.Replica, serve.StatusDone)
				if err != nil {
					continue
				}
				if ack == serve.AckOK {
					ackedDone.Add(1)
				}
			}
		}()
	}

	start := time.Now()
	var st serve.StatsResponse
	haveStats := false
	for {
		if st2, err := cc.LeaderStats(); err == nil {
			st, haveStats = st2, true
			if st.BagsCompleted >= acked && st.BagsSubmitted == st.BagsCompleted {
				break
			}
		}
		if ctx.Err() != nil {
			cancel()
			wg.Wait()
			if !haveStats {
				return errors.New("hammer: timed out with no leader reachable")
			}
			return fmt.Errorf("hammer: timed out with %d/%d bags complete", st.BagsCompleted, acked)
		}
		time.Sleep(50 * time.Millisecond)
	}
	elapsed := time.Since(start)
	cancel()
	wg.Wait()

	// The books must balance: nothing the cluster acked may be missing.
	if st.BagsCompleted < acked {
		return fmt.Errorf("hammer: acked bags lost: %d acked, %d completed", acked, st.BagsCompleted)
	}
	if done := int(ackedDone.Load()); st.TasksCompleted < done {
		return fmt.Errorf("hammer: acked work lost: %d done-reports acked, %d tasks completed",
			done, st.TasksCompleted)
	}
	fmt.Fprintf(w, "hammer: %d bags drained in %.2fs, %d acked done-reports, %d tasks completed\n",
		acked, elapsed.Seconds(), ackedDone.Load(), st.TasksCompleted)
	if st.Replication != nil {
		fmt.Fprintf(w, "hammer: final leader %s at term %d, commit LSN %d, %d elections seen\n",
			st.Replication.LeaderID, st.Replication.Term, st.Replication.CommitLSN, st.Replication.Elections)
	}
	fmt.Fprintf(w, "hammer: no acked operation lost\n")
	return nil
}

// report renders the campaign summary.
func report(w io.Writer, o options, st serve.StatsResponse, rtt serve.LatencySummary, elapsed time.Duration) {
	sec := elapsed.Seconds()
	fmt.Fprintf(w, "\n%d workers, %d bags x %d tasks, policy %s, drained in %.2fs\n",
		o.workers, o.bags, o.tasks, st.Policy, sec)
	fmt.Fprintf(w, "throughput: %.0f completions/s, %.0f dispatches/s sustained\n",
		float64(st.TasksCompleted)/sec, float64(st.ReplicasStarted)/sec)
	d := st.DecisionLatency
	fmt.Fprintf(w, "decision latency (n=%d): p50 %s  p95 %s  p99 %s  max %s\n",
		d.Count, ms(d.P50), ms(d.P95), ms(d.P99), ms(d.Max))
	fmt.Fprintf(w, "fetch RTT        (n=%d): p50 %s  p95 %s  p99 %s  max %s\n",
		rtt.Count, ms(rtt.P50), ms(rtt.P95), ms(rtt.P99), ms(rtt.Max))
	mean := 0.0
	for _, b := range st.Bags {
		mean += b.Turnaround
	}
	mean /= float64(len(st.Bags))
	fmt.Fprintf(w, "mean bag turnaround: %.3fs wall", mean)
	if o.timeScale > 0 {
		fmt.Fprintf(w, " (%.0f reference seconds)", mean/o.timeScale)
	}
	fmt.Fprintf(w, "\nfailures: %d injected resubmissions, %d lease expiries, %d stale reports\n",
		st.ReplicaFailures, st.LeaseExpiries, st.StaleReports)
}

// ms formats a latency expressed in seconds.
func ms(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}
