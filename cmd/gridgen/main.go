// Command gridgen generates, inspects and validates the JSONL trace files
// consumed by botsim's -workload-in and -avail-in flags, making synthetic
// experiments portable and repeatable.
//
//	gridgen workload -gran 25000 -bots 50 -util 0.5 -o wl.jsonl
//	gridgen avail -grid het -avail low -horizon 500000 -o avail.jsonl
//	gridgen stats wl.jsonl
//	gridgen stats avail.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"botgrid/internal/checkpoint"
	"botgrid/internal/core"
	"botgrid/internal/des"
	"botgrid/internal/grid"
	"botgrid/internal/rng"
	"botgrid/internal/stats"
	"botgrid/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "workload":
		err = cmdWorkload(os.Args[2:])
	case "avail":
		err = cmdAvail(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridgen:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  gridgen workload [flags]   generate a BoT arrival trace
  gridgen avail    [flags]   generate a machine availability trace
  gridgen stats <file>       summarize a trace file (kind auto-detected)`)
	os.Exit(2)
}

func cmdWorkload(args []string) error {
	fs := flag.NewFlagSet("workload", flag.ExitOnError)
	var (
		gran    = fs.Float64("gran", 5000, "task granularity in reference seconds")
		appSize = fs.Float64("appsize", workload.DefaultAppSize, "application size in reference seconds")
		util    = fs.Float64("util", 0.5, "target utilization used to derive the arrival rate")
		power   = fs.Float64("power", 1000, "grid power used to derive the arrival rate")
		avail   = fs.String("avail", "high", "availability level used to derive the arrival rate")
		bots    = fs.Int("bots", 100, "number of arrivals")
		seed    = fs.Uint64("seed", 1, "random seed")
		dist    = fs.String("dist", "uniform", "task-duration distribution: uniform|weibull|lognormal")
		out     = fs.String("o", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	a, err := parseAvail(*avail)
	if err != nil {
		return err
	}
	gc := grid.DefaultConfig(grid.Hom, a)
	gc.TotalPower = *power
	d, err := parseDist(*dist)
	if err != nil {
		return err
	}
	cfg := workload.Config{
		Granularities: []float64{*gran},
		AppSize:       *appSize,
		Spread:        workload.DefaultSpread,
		Lambda: workload.LambdaForUtilization(*util, *appSize,
			core.EffectivePower(gc, checkpoint.DefaultConfig())),
		Dist: d,
	}
	gen := workload.NewGenerator(cfg, rng.Root(*seed, "tasks"), rng.Root(*seed, "arrivals"))
	return withOutput(*out, func(w *os.File) error {
		return workload.WriteTrace(w, gen.Take(*bots))
	})
}

func cmdAvail(args []string) error {
	fs := flag.NewFlagSet("avail", flag.ExitOnError)
	var (
		het     = fs.String("grid", "hom", "heterogeneity: hom|het")
		avail   = fs.String("avail", "low", "availability level: high|med|low")
		power   = fs.Float64("power", 1000, "total grid power")
		horizon = fs.Float64("horizon", 1e6, "trace length in simulated seconds")
		seed    = fs.Uint64("seed", 1, "random seed")
		out     = fs.String("o", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	a, err := parseAvail(*avail)
	if err != nil {
		return err
	}
	var h grid.Heterogeneity
	switch strings.ToLower(*het) {
	case "hom":
		h = grid.Hom
	case "het":
		h = grid.Het
	default:
		return fmt.Errorf("unknown grid kind %q", *het)
	}
	gc := grid.DefaultConfig(h, a)
	gc.TotalPower = *power
	g := grid.Build(gc, rng.Root(*seed, "grid-build"))
	eng := des.New()
	rec := grid.NewAvailRecorder(eng, nil)
	g.Start(eng, rng.Root(*seed, "availability"), rec)
	eng.RunUntil(*horizon)
	return withOutput(*out, func(w *os.File) error {
		return grid.WriteAvailTrace(w, rec.Events())
	})
}

func cmdStats(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("stats needs exactly one trace file")
	}
	f, err := os.Open(args[0])
	if err != nil {
		return err
	}
	defer f.Close()
	// Try workload format first, then availability.
	if bots, err := workload.ReadTrace(f); err == nil {
		return workloadStats(bots)
	}
	if _, err := f.Seek(0, 0); err != nil {
		return err
	}
	events, err := grid.ReadAvailTrace(f)
	if err != nil || len(events) == 0 {
		return fmt.Errorf("%s is neither a valid workload nor availability trace", args[0])
	}
	return availStats(events)
}

func workloadStats(bots []*workload.BoT) error {
	var tasks, work, inter stats.Accumulator
	prev := 0.0
	grans := map[float64]int{}
	for _, b := range bots {
		tasks.Add(float64(b.NumTasks()))
		work.Add(b.TotalWork())
		inter.Add(b.Arrival - prev)
		prev = b.Arrival
		grans[b.Granularity]++
	}
	fmt.Printf("workload trace: %d bags over %.0f s\n", len(bots), prev)
	fmt.Printf("  tasks/bag      mean %.1f  min %.0f  max %.0f\n", tasks.Mean(), tasks.Min(), tasks.Max())
	fmt.Printf("  work/bag       mean %.0f ref-s\n", work.Mean())
	fmt.Printf("  inter-arrival  mean %.0f s (lambda %.3e)\n", inter.Mean(), 1/inter.Mean())
	fmt.Printf("  granularities  %d distinct\n", len(grans))
	return nil
}

func availStats(events []grid.AvailEvent) error {
	machines := map[int]bool{}
	fails, repairs := 0, 0
	for _, e := range events {
		machines[e.Machine] = true
		if e.Up {
			repairs++
		} else {
			fails++
		}
	}
	last := events[len(events)-1].Time
	fmt.Printf("availability trace: %d events over %.0f s\n", len(events), last)
	fmt.Printf("  machines  %d\n", len(machines))
	fmt.Printf("  failures  %d  repairs %d\n", fails, repairs)
	fmt.Printf("  MTBF est. %.0f s per machine\n", last*float64(len(machines))/float64(fails))
	return nil
}

func parseAvail(s string) (grid.Availability, error) {
	switch strings.ToLower(s) {
	case "high":
		return grid.HighAvail, nil
	case "med", "medium":
		return grid.MedAvail, nil
	case "low":
		return grid.LowAvail, nil
	}
	return 0, fmt.Errorf("unknown availability %q", s)
}

func parseDist(s string) (workload.TaskDist, error) {
	switch strings.ToLower(s) {
	case "uniform":
		return workload.UniformDist, nil
	case "weibull":
		return workload.WeibullDist, nil
	case "lognormal":
		return workload.LognormalDist, nil
	}
	return 0, fmt.Errorf("unknown distribution %q", s)
}

func withOutput(path string, fn func(*os.File) error) error {
	if path == "" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := fn(f); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}
