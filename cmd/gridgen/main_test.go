package main

import (
	"os"
	"path/filepath"
	"testing"

	"botgrid/internal/grid"
	"botgrid/internal/workload"
)

func TestParseAvail(t *testing.T) {
	cases := map[string]grid.Availability{
		"high": grid.HighAvail, "MED": grid.MedAvail, "medium": grid.MedAvail, "low": grid.LowAvail,
	}
	for in, want := range cases {
		got, err := parseAvail(in)
		if err != nil || got != want {
			t.Fatalf("parseAvail(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseAvail("sometimes"); err == nil {
		t.Fatal("accepted unknown availability")
	}
}

func TestParseDist(t *testing.T) {
	cases := map[string]workload.TaskDist{
		"uniform": workload.UniformDist, "Weibull": workload.WeibullDist, "lognormal": workload.LognormalDist,
	}
	for in, want := range cases {
		got, err := parseDist(in)
		if err != nil || got != want {
			t.Fatalf("parseDist(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseDist("pareto"); err == nil {
		t.Fatal("accepted unknown distribution")
	}
}

func TestGenerateAndStatRoundTrip(t *testing.T) {
	dir := t.TempDir()
	wl := filepath.Join(dir, "wl.jsonl")
	if err := cmdWorkload([]string{"-gran", "5000", "-bots", "10", "-appsize", "50000", "-o", wl}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(wl)
	if err != nil {
		t.Fatal(err)
	}
	bots, err := workload.ReadTrace(f)
	f.Close()
	if err != nil || len(bots) != 10 {
		t.Fatalf("generated trace invalid: %d bots, %v", len(bots), err)
	}
	if err := cmdStats([]string{wl}); err != nil {
		t.Fatalf("stats on workload trace: %v", err)
	}

	av := filepath.Join(dir, "av.jsonl")
	if err := cmdAvail([]string{"-grid", "hom", "-avail", "low", "-power", "100",
		"-horizon", "50000", "-o", av}); err != nil {
		t.Fatal(err)
	}
	f2, err := os.Open(av)
	if err != nil {
		t.Fatal(err)
	}
	events, err := grid.ReadAvailTrace(f2)
	f2.Close()
	if err != nil || len(events) == 0 {
		t.Fatalf("generated availability trace invalid: %d events, %v", len(events), err)
	}
	if err := cmdStats([]string{av}); err != nil {
		t.Fatalf("stats on availability trace: %v", err)
	}
}

func TestStatsRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(bad, []byte("junk\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdStats([]string{bad}); err == nil {
		t.Fatal("garbage trace accepted")
	}
	if err := cmdStats(nil); err == nil {
		t.Fatal("missing argument accepted")
	}
	if err := cmdStats([]string{filepath.Join(dir, "absent")}); err == nil {
		t.Fatal("absent file accepted")
	}
}

func TestCmdWorkloadBadFlags(t *testing.T) {
	if err := cmdWorkload([]string{"-avail", "bogus"}); err == nil {
		t.Fatal("bad availability accepted")
	}
	if err := cmdWorkload([]string{"-dist", "bogus"}); err == nil {
		t.Fatal("bad distribution accepted")
	}
	if err := cmdAvail([]string{"-grid", "bogus"}); err == nil {
		t.Fatal("bad grid kind accepted")
	}
}
