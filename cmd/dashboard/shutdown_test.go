package main

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"

	"botgrid/internal/core"
	"botgrid/internal/experiment"
)

// TestGracefulDrain covers the SIGTERM path: cancellation closes the
// listener promptly while a figure request already being computed is
// allowed to finish and deliver its response.
func TestGracefulDrain(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()

	// Heavier-than-quick options so the in-flight figure run reliably
	// straddles the cancellation below.
	opts := experiment.QuickOptions(3)
	opts.Granularities = []float64{1000}
	opts.Policies = []core.PolicyKind{core.FCFSShare, core.RR}
	opts.MinReps, opts.MaxReps = 4, 4
	opts.NumBoTs, opts.Warmup = 60, 10

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- run(ctx, ln, opts, 30*time.Second) }()

	// Wait until the server answers, then start an uncached figure run on
	// a raw connection so we can read its response after shutdown begins.
	waitHealthy(t, addr)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET /api/figure/F1a HTTP/1.1\r\nHost: %s\r\n\r\n", addr)
	time.Sleep(20 * time.Millisecond) // let the handler start computing

	cancel() // SIGTERM

	// New connections get refused once the listener closes.
	deadline := time.Now().Add(5 * time.Second)
	for {
		c2, err := net.Dial("tcp", addr)
		if err != nil {
			break
		}
		c2.Close()
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting connections after shutdown")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The in-flight figure run completes and its response arrives.
	resp, err := http.ReadResponse(bufio.NewReader(conn), nil)
	if err != nil {
		t.Fatalf("in-flight request died during drain: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-flight request status %d", resp.StatusCode)
	}
	resp.Body.Close()

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v, want clean drain", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not return after drain")
	}
}

func waitHealthy(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/")
		if err == nil {
			resp.Body.Close()
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("server never became healthy")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
