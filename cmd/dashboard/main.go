// Command dashboard serves an interactive view of the experiment suite:
// it runs figure panels on demand (quick scale by default) and renders
// them as SVG charts with their data tables, plus a JSON API for tooling.
//
//	dashboard -addr :8080          # then open http://localhost:8080/
//	dashboard -addr :8080 -scale 1 # paper-scale runs (slower)
//
// Endpoints:
//
//	/                 index with links to every figure
//	/figure/{id}      HTML page: SVG chart + table + winners
//	/figure/{id}.svg  the chart alone
//	/api/figure/{id}  JSON document (same schema as sweep -format json)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"html/template"
	"log"
	"net"
	"net/http"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"botgrid/internal/experiment"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8080", "listen address")
		seed    = flag.Uint64("seed", 42, "base random seed")
		quick   = flag.Bool("quick", true, "10×-scaled quick runs (disable for paper scale)")
		minReps = flag.Int("minreps", 0, "override minimum replications per cell")
		maxReps = flag.Int("maxreps", 0, "override maximum replications per cell")
		bots    = flag.Int("bots", 0, "override BoT arrivals per replication")
		grace   = flag.Duration("grace", 30*time.Second, "shutdown drain timeout")
	)
	flag.Parse()

	opts := experiment.DefaultOptions(*seed)
	if *quick {
		opts = experiment.QuickOptions(*seed)
	}
	if *minReps > 0 {
		opts.MinReps = *minReps
	}
	if *maxReps > 0 {
		opts.MaxReps = *maxReps
	}
	if *bots > 0 {
		opts.NumBoTs = *bots
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	log.Printf("dashboard listening on http://%s/ (scale %.2g)", ln.Addr(), opts.Scale)
	if err := run(ctx, ln, opts, *grace); err != nil {
		log.Fatal(err)
	}
	log.Printf("dashboard: drained and stopped")
}

// run serves the dashboard on ln until ctx is cancelled, then drains
// gracefully: the listener closes, in-flight figure runs finish (bounded
// by grace), and run returns nil.
func run(ctx context.Context, ln net.Listener, opts experiment.Options, grace time.Duration) error {
	hs := &http.Server{Handler: newServer(opts)}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := hs.Shutdown(shctx); err != nil {
		hs.Close()
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// server runs and caches figure results.
type server struct {
	opts experiment.Options
	mux  *http.ServeMux

	mu    sync.Mutex
	cache map[string]*experiment.FigureResult
}

// newServer wires the routes.
func newServer(opts experiment.Options) *server {
	s := &server{
		opts:  opts,
		mux:   http.NewServeMux(),
		cache: make(map[string]*experiment.FigureResult),
	}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/figure/", s.handleFigure)
	s.mux.HandleFunc("/api/figure/", s.handleAPI)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// result runs a figure (or returns the cached run).
func (s *server) result(id string) (*experiment.FigureResult, error) {
	s.mu.Lock()
	if fr, ok := s.cache[id]; ok {
		s.mu.Unlock()
		return fr, nil
	}
	s.mu.Unlock()
	f, err := experiment.FigureByID(id)
	if err != nil {
		return nil, err
	}
	fr, err := experiment.RunFigure(f, s.opts)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.cache[id] = fr
	s.mu.Unlock()
	return fr, nil
}

var indexTmpl = template.Must(template.New("index").Parse(`<!DOCTYPE html>
<html><head><title>botgrid dashboard</title>
<style>body{font-family:sans-serif;max-width:52rem;margin:2rem auto}li{margin:.3rem 0}</style>
</head><body>
<h1>Multi-BoT Desktop Grid scheduling — evaluation dashboard</h1>
<p>Each link runs (and caches) one panel of the paper's evaluation at
scale {{printf "%.2g" .Scale}} and renders it as an SVG grouped bar chart.</p>
<ul>
{{range .Figures}}<li><a href="/figure/{{.ID}}">{{.ID}}</a> — {{.Caption}}</li>
{{end}}</ul>
</body></html>`))

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	data := struct {
		Scale   float64
		Figures []experiment.Figure
	}{s.opts.Scale, experiment.Figures}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := indexTmpl.Execute(w, data); err != nil {
		log.Printf("dashboard: index render: %v", err)
	}
}

var figureTmpl = template.Must(template.New("figure").Parse(`<!DOCTYPE html>
<html><head><title>{{.ID}} — botgrid</title>
<style>body{font-family:sans-serif;max-width:60rem;margin:2rem auto}
pre{background:#f6f6f6;padding:1rem;overflow-x:auto}</style>
</head><body>
<p><a href="/">&larr; all figures</a></p>
<h1>{{.ID}}</h1><p>{{.Caption}}</p>
<object data="/figure/{{.ID}}.svg" type="image/svg+xml" width="760" height="420"></object>
<h2>Data</h2><pre>{{.Table}}</pre>
<h2>Winners</h2><pre>{{.Summary}}</pre>
<p><a href="/api/figure/{{.ID}}">JSON</a></p>
</body></html>`))

func (s *server) handleFigure(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/figure/")
	if svgID, ok := strings.CutSuffix(id, ".svg"); ok {
		fr, err := s.result(svgID)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "image/svg+xml")
		if err := fr.WriteSVG(w); err != nil {
			log.Printf("dashboard: svg render: %v", err)
		}
		return
	}
	fr, err := s.result(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	var tbl, sum strings.Builder
	if err := fr.WriteTable(&tbl); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if err := fr.WriteSummary(&sum); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	data := struct {
		ID, Caption, Table, Summary string
	}{fr.Figure.ID, fr.Figure.Caption, tbl.String(), sum.String()}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := figureTmpl.Execute(w, data); err != nil {
		log.Printf("dashboard: figure render: %v", err)
	}
}

func (s *server) handleAPI(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/api/figure/")
	fr, err := s.result(id)
	if err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := fr.WriteJSON(w); err != nil {
		log.Printf("dashboard: json render: %v", err)
	}
}
