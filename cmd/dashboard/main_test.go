package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"botgrid/internal/core"
	"botgrid/internal/experiment"
)

func testServer() *server {
	opts := experiment.QuickOptions(3)
	opts.Granularities = []float64{1000}
	opts.Policies = []core.PolicyKind{core.FCFSShare, core.RR}
	opts.MinReps, opts.MaxReps = 2, 2
	opts.NumBoTs, opts.Warmup = 20, 4
	return newServer(opts)
}

func get(t *testing.T, s *server, path string) (*http.Response, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	res := rec.Result()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res, string(body)
}

func TestIndex(t *testing.T) {
	s := testServer()
	res, body := get(t, s, "/")
	if res.StatusCode != 200 {
		t.Fatalf("status %d", res.StatusCode)
	}
	for _, want := range []string{"F1a", "F2d", "dashboard"} {
		if !strings.Contains(body, want) {
			t.Fatalf("index missing %q", want)
		}
	}
}

func TestIndexUnknownPath(t *testing.T) {
	s := testServer()
	res, _ := get(t, s, "/nope")
	if res.StatusCode != 404 {
		t.Fatalf("status %d, want 404", res.StatusCode)
	}
}

func TestFigurePage(t *testing.T) {
	s := testServer()
	res, body := get(t, s, "/figure/F1a")
	if res.StatusCode != 200 {
		t.Fatalf("status %d: %s", res.StatusCode, body)
	}
	for _, want := range []string{"F1a", "FCFS-Share", "winner="} {
		if !strings.Contains(body, want) {
			t.Fatalf("figure page missing %q", want)
		}
	}
}

func TestFigureSVGEndpoint(t *testing.T) {
	s := testServer()
	res, body := get(t, s, "/figure/F1a.svg")
	if res.StatusCode != 200 {
		t.Fatalf("status %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); ct != "image/svg+xml" {
		t.Fatalf("content type %q", ct)
	}
	if !strings.HasPrefix(body, "<svg") {
		t.Fatal("not an SVG document")
	}
}

func TestFigureUnknown(t *testing.T) {
	s := testServer()
	res, _ := get(t, s, "/figure/F9z")
	if res.StatusCode != 404 {
		t.Fatalf("status %d, want 404", res.StatusCode)
	}
}

func TestAPIFigure(t *testing.T) {
	s := testServer()
	res, body := get(t, s, "/api/figure/F2a")
	if res.StatusCode != 200 {
		t.Fatalf("status %d", res.StatusCode)
	}
	var doc struct {
		ID    string `json:"id"`
		Cells []any  `json:"cells"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.ID != "F2a" || len(doc.Cells) != 2 {
		t.Fatalf("doc = %+v", doc)
	}
}

func TestCaching(t *testing.T) {
	s := testServer()
	get(t, s, "/figure/F1a.svg")
	if len(s.cache) != 1 {
		t.Fatalf("cache size %d, want 1", len(s.cache))
	}
	// Second request hits the cache (same pointer).
	fr1 := s.cache["F1a"]
	get(t, s, "/figure/F1a")
	if s.cache["F1a"] != fr1 {
		t.Fatal("cache entry replaced")
	}
}
