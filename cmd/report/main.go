// Command report prints the derived experiment parameters: the Desktop
// Grid configuration table (experiment T1, paper §4.1) and the workload /
// arrival-rate table (experiment T2, paper §4.2).
//
// Examples:
//
//	report -table configs
//	report -table workloads -scale 0.1
//	report -table all
package main

import (
	"flag"
	"fmt"
	"os"

	"botgrid/internal/experiment"
)

func main() {
	var (
		table = flag.String("table", "all", "which table: configs|workloads|analysis|all")
		seed  = flag.Uint64("seed", 42, "seed for grid instantiation")
		scale = flag.Float64("scale", 1, "grid/application scale factor (0,1]")
	)
	flag.Parse()

	switch *table {
	case "configs", "workloads", "analysis", "all":
	default:
		fmt.Fprintf(os.Stderr, "report: unknown table %q (configs|workloads|analysis|all)\n", *table)
		os.Exit(2)
	}

	if *table == "configs" || *table == "all" {
		fmt.Println("T1 — Desktop Grid configurations (§4.1)")
		rows := experiment.ConfigTable(*seed, *scale)
		if err := experiment.WriteConfigTable(os.Stdout, rows); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	if *table == "workloads" || *table == "all" {
		fmt.Println("T2 — workloads and arrival rates from U = λ·D (§4.2, Eq. 1)")
		rows := experiment.WorkloadTable(*scale)
		if err := experiment.WriteWorkloadTable(os.Stdout, rows); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	if *table == "analysis" || *table == "all" {
		fmt.Println("T3 — operational analysis (demands, saturation points, M/G/1 waits)")
		rows := experiment.AnalysisTable(*scale)
		if err := experiment.WriteAnalysisTable(os.Stdout, rows); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "report:", err)
	os.Exit(1)
}
