// Command botserved runs the knowledge-free bag-selection policies as a
// live work-dispatch daemon: workers poll it over HTTP for task replicas,
// in the BOINC/OurGrid pull style, and the same core.Scheduler that drives
// the simulator makes every decision in wall-clock time.
//
//	botserved -addr :8431 -policy LongIdle -workers 500 -lease 30s
//
// Endpoints (see internal/serve/protocol.go for the wire reference):
//
//	POST /v1/bags                   submit a Bag-of-Tasks
//	GET  /v1/bags/{id}              bag status
//	POST /v1/workers/{id}/fetch     request a task replica
//	POST /v1/workers/{id}/report    report done/failed
//	POST /v1/workers/{id}/heartbeat renew the lease
//	GET  /v1/stats                  scheduler snapshot
//	GET  /metrics                   expvar-style counters
//
// SIGINT/SIGTERM drain gracefully: the listener closes immediately,
// in-flight requests finish (bounded by -grace), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"botgrid/internal/core"
	"botgrid/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8431", "listen address")
		policy  = flag.String("policy", "FCFS-Share", "bag-selection policy")
		workers = flag.Int("workers", 256, "maximum registered workers")
		power   = flag.Float64("power", 10, "nominal worker computing power")
		thresh  = flag.Int("threshold", 2, "WQR-FT replication threshold")
		lease   = flag.Duration("lease", 30*time.Second, "worker lease (silence past it = machine failure)")
		retry   = flag.Int("retryms", 100, "idle-poll retry hint, milliseconds")
		seed    = flag.Uint64("seed", 42, "seed for the Random policy")
		grace   = flag.Duration("grace", 10*time.Second, "shutdown drain timeout")
	)
	flag.Parse()

	k, err := core.ParsePolicy(*policy)
	if err != nil {
		log.Fatal(err)
	}
	cfg := serve.Config{
		Policy:      k,
		MaxWorkers:  *workers,
		WorkerPower: *power,
		Sched:       core.SchedConfig{Threshold: *thresh},
		Lease:       *lease,
		RetryMs:     *retry,
		Seed:        *seed,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	log.Printf("botserved: policy %s, %d worker slots, lease %s, on http://%s/",
		k, *workers, *lease, ln.Addr())
	if err := run(ctx, ln, cfg, *grace); err != nil {
		log.Fatal(err)
	}
	log.Printf("botserved: drained and stopped")
}

// run serves cfg on ln until ctx is cancelled, then drains: the listener
// closes, in-flight requests finish (up to grace), and the lease sweeper
// stops. It returns nil on a clean drain.
func run(ctx context.Context, ln net.Listener, cfg serve.Config, grace time.Duration) error {
	s := serve.NewServer(cfg)
	defer s.Close()
	hs := &http.Server{Handler: s}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := hs.Shutdown(shctx); err != nil {
		hs.Close()
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
