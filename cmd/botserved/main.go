// Command botserved runs the knowledge-free bag-selection policies as a
// live work-dispatch daemon: workers poll it over HTTP for task replicas,
// in the BOINC/OurGrid pull style, and the same core.Scheduler that drives
// the simulator makes every decision in wall-clock time.
//
//	botserved -addr :8431 -policy LongIdle -workers 500 -lease 30s \
//	          -data-dir /var/lib/botgrid -fsync batch
//
// Endpoints (see internal/serve/protocol.go for the wire reference):
//
//	POST /v1/bags                   submit a Bag-of-Tasks
//	GET  /v1/bags/{id}              bag status
//	POST /v1/workers/{id}/fetch     request a task replica
//	POST /v1/workers/{id}/report    report done/failed
//	POST /v1/workers/{id}/heartbeat renew the lease
//	GET  /v1/stats                  scheduler snapshot
//	GET  /metrics                   expvar-style counters
//
// With -wire-addr set, the binary wire protocol (internal/wire) is served
// alongside HTTP on its own listener: persistent connections, batched
// fetch/report, and durability acks coalesced onto the journal's group
// commit. HTTP stays up as the compatibility front end; both transports
// drive the same scheduler state.
//
// With -data-dir set, every scheduler mutation is journaled (write-ahead
// log + periodic snapshots) and a restart — graceful or SIGKILL — recovers
// the complete pre-crash state: bags, queued and running tasks, worker
// registrations, replica leases and stats counters.
//
// With -shards N the dispatch plane splits into N independent scheduler
// shards, each with its own lock and its own journal under -data-dir, so
// requests from different workers proceed in parallel with no global
// mutex. The shard count is recorded in the data directory; restart with
// the same -shards to recover, or rewrite the layout offline with
// -reshard N first.
//
// SIGINT/SIGTERM drain gracefully: the listener closes immediately,
// in-flight requests finish (bounded by -grace), a final snapshot is
// written, then the process exits.
//
// With -peers and -node-id, botserved runs as one member of a replicated
// dispatch cluster: the nodes elect a leader, the leader streams every
// journal record to the followers and acks submits and done-reports only
// once a quorum holds them durably, and a killed leader is replaced by a
// follower with no acked work lost. Followers redirect dispatch traffic to
// the leader. A 3-node cluster is three invocations of the same binary:
//
//	botserved -addr 127.0.0.1:8431 -data-dir /var/lib/bg/a -node-id a \
//	          -peers a=127.0.0.1:9431,b=127.0.0.1:9432,c=127.0.0.1:9433
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"botgrid/internal/core"
	"botgrid/internal/journal"
	"botgrid/internal/replicate"
	"botgrid/internal/serve"
	"botgrid/internal/wire"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8431", "listen address")
		policy   = flag.String("policy", "FCFS-Share", "bag-selection policy")
		workers  = flag.Int("workers", 256, "maximum registered workers")
		power    = flag.Float64("power", 10, "nominal worker computing power")
		thresh   = flag.Int("threshold", 2, "WQR-FT replication threshold")
		lease    = flag.Duration("lease", 30*time.Second, "worker lease (silence past it = machine failure)")
		retry    = flag.Int("retryms", 100, "idle-poll retry hint, milliseconds")
		seed     = flag.Uint64("seed", 42, "seed for the Random policy")
		grace    = flag.Duration("grace", 10*time.Second, "shutdown drain timeout")
		dataDir  = flag.String("data-dir", "", "journal directory for crash recovery (empty: in-memory only)")
		fsync    = flag.String("fsync", "batch", "journal durability: always, batch or off")
		mtbf     = flag.Duration("snapshot-mtbf", 10*time.Minute, "expected crash interval driving the snapshot cadence")
		shards   = flag.Int("shards", 1, "scheduler shards (independent lock + journal each)")
		rebal    = flag.Duration("rebalance", time.Second, "cross-shard rebalance cadence for FairShare/LongIdle (negative: off)")
		reshard  = flag.Int("reshard", 0, "rewrite -data-dir's journal layout for this many shards, then exit")
		wireAddr = flag.String("wire-addr", "", "binary wire protocol listen address (empty: HTTP only)")

		nodeID    = flag.String("node-id", "", "this node's ID in a replicated cluster (requires -peers)")
		peers     = flag.String("peers", "", "cluster members as id=host:port,... (replication listeners); empty runs standalone")
		advertise = flag.String("advertise", "", "dispatch address advertised to cluster peers for redirects (default -addr)")
		replLease = flag.Duration("repl-lease", 2*time.Second, "leader lease; a silent leader is replaced after it")
	)
	flag.Parse()

	k, err := core.ParsePolicy(*policy)
	if err != nil {
		log.Fatal(err)
	}
	fmode, err := journal.ParseFsyncMode(*fsync)
	if err != nil {
		log.Fatal(err)
	}
	if *reshard > 0 {
		if *dataDir == "" {
			log.Fatal("botserved: -reshard requires -data-dir")
		}
		if err := serve.Reshard(*dataDir, *reshard, fmode); err != nil {
			log.Fatal(err)
		}
		log.Printf("botserved: %s resharded for %d shards", *dataDir, *reshard)
		return
	}
	cfg := serve.Config{
		Policy:       k,
		MaxWorkers:   *workers,
		WorkerPower:  *power,
		Sched:        core.SchedConfig{Threshold: *thresh},
		Lease:        *lease,
		RetryMs:      *retry,
		Seed:         *seed,
		DataDir:      *dataDir,
		Fsync:        fmode,
		SnapshotMTBF: *mtbf,
		Shards:       *shards,
		Rebalance:    *rebal,
	}
	if *shards > 1 && *peers != "" {
		log.Fatal("botserved: replication (-peers) requires -shards 1")
	}
	if *wireAddr != "" && *peers != "" {
		// The binary protocol has no redirect story yet: followers steer
		// workers to the leader over HTTP only.
		log.Fatal("botserved: -wire-addr requires standalone mode (no -peers)")
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	log.Printf("botserved: policy %s, %d worker slots, lease %s, on http://%s/",
		k, *workers, *lease, ln.Addr())
	if *peers != "" {
		if *nodeID == "" {
			log.Fatal("botserved: -peers requires -node-id")
		}
		if *dataDir == "" {
			log.Fatal("botserved: replication requires -data-dir")
		}
		pl, err := replicate.ParsePeers(*peers)
		if err != nil {
			log.Fatal(err)
		}
		httpAddr := *advertise
		if httpAddr == "" {
			httpAddr = *addr
		}
		rcfg := replicate.Config{
			NodeID:        *nodeID,
			Peers:         pl,
			Dir:           *dataDir,
			Lease:         *replLease,
			AdvertiseHTTP: httpAddr,
			Fsync:         cfg.Fsync,
			SnapshotMTBF:  cfg.SnapshotMTBF,
			Logf:          log.Printf,
		}
		cfg.DataDir = "" // the replication node owns the journal
		if err := runCluster(ctx, ln, cfg, rcfg, *grace); err != nil {
			log.Fatal(err)
		}
		log.Printf("botserved: cluster node %s drained and stopped", *nodeID)
		return
	}
	if err := run(ctx, ln, cfg, *wireAddr, *grace); err != nil {
		log.Fatal(err)
	}
	log.Printf("botserved: drained and stopped")
}

// runCluster serves one replicated cluster node on ln until ctx is
// cancelled, then drains like run: listener closed, in-flight requests
// finished (up to grace), replication streams stopped, and — when this
// node was leading — a final snapshot written.
func runCluster(ctx context.Context, ln net.Listener, cfg serve.Config, rcfg replicate.Config, grace time.Duration) error {
	g, err := serve.StartCluster(cfg, rcfg)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: g}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return errors.Join(err, g.Close())
	case <-ctx.Done():
	}
	shctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := hs.Shutdown(shctx); err != nil {
		hs.Close()
		return errors.Join(err, g.Close())
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return errors.Join(err, g.Close())
	}
	return g.Close()
}

// run serves cfg on ln until ctx is cancelled, then drains: the listener
// closes, in-flight requests finish (up to grace), the lease sweeper
// stops, and — when journaling — a final snapshot is written so the next
// start recovers with zero log replay. It returns nil on a clean drain.
// With wireAddr set, the binary wire protocol is served alongside HTTP;
// its persistent connections are cut at drain (clients treat the drop
// like any other — fetch is idempotent, unacked reports retry).
func run(ctx context.Context, ln net.Listener, cfg serve.Config, wireAddr string, grace time.Duration) error {
	s, err := serve.NewServer(cfg)
	if err != nil {
		return err
	}
	closed := false
	defer func() {
		if !closed {
			s.Close()
		}
	}()
	if rec := s.Recovery(); rec != nil {
		if rec.Fresh {
			log.Printf("botserved: journal initialized in %s (fsync=%s)", cfg.DataDir, cfg.Fsync)
		} else {
			log.Printf("botserved: recovered %s in %.3fs: snapshot@%d + %d records"+
				" (%d segments, %d torn bytes) -> %d bags, %d completed, %d workers,"+
				" %d running replicas, %d leases expired while down",
				cfg.DataDir, rec.DurationSec, rec.SnapshotLSN, rec.RecordsReplayed,
				rec.SegmentsScanned, rec.TornBytes, rec.Bags, rec.CompletedBags,
				rec.Workers, rec.Replicas, rec.LeasesExpired)
		}
	}
	var wsrv *wire.Server
	werrc := make(chan error, 1)
	if wireAddr != "" {
		wln, err := net.Listen("tcp", wireAddr)
		if err != nil {
			return err
		}
		wsrv = wire.NewServer(s.WireHandler())
		log.Printf("botserved: wire protocol on %s", wln.Addr())
		go func() { werrc <- wsrv.Serve(wln) }()
	}
	stopWire := func() error {
		if wsrv == nil {
			return nil
		}
		err := wsrv.Close()
		if serr := <-werrc; !errors.Is(serr, wire.ErrServerClosed) {
			err = errors.Join(err, serr)
		}
		wsrv = nil
		return err
	}
	hs := &http.Server{Handler: s}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return errors.Join(err, stopWire())
	case err := <-werrc:
		hs.Close()
		return errors.Join(err, wsrv.Close())
	case <-ctx.Done():
	}
	if err := stopWire(); err != nil {
		return err
	}
	shctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := hs.Shutdown(shctx); err != nil {
		hs.Close()
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	closed = true
	if err := s.Close(); err != nil {
		return fmt.Errorf("closing journal: %w", err)
	}
	if cfg.DataDir != "" {
		log.Printf("botserved: final snapshot written to %s", cfg.DataDir)
	}
	return nil
}
