package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"botgrid/internal/core"
	"botgrid/internal/serve"
)

// TestGracefulDrain checks the SIGTERM path end to end: after cancellation
// the listener closes immediately (new connections refused) while a
// request already in flight — its body only half-sent — still completes.
func TestGracefulDrain(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, ln, serve.Config{Policy: core.FCFSShare, MaxWorkers: 4,
			Lease: time.Minute}, "", 5*time.Second)
	}()

	// Wait for the server to accept requests.
	waitHealthy(t, addr)

	// Open an in-flight request: headers plus half the body, then stall.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	body := `{"granularity":10,"works":[10,10]}`
	fmt.Fprintf(conn, "POST /v1/bags HTTP/1.1\r\nHost: %s\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n",
		addr, len(body))
	io.WriteString(conn, body[:10])
	time.Sleep(50 * time.Millisecond) // let the handler block on the body

	cancel() // SIGTERM

	// The listener must close promptly: new connections get refused.
	deadline := time.Now().Add(3 * time.Second)
	for {
		c2, err := net.Dial("tcp", addr)
		if err != nil {
			break
		}
		c2.Close()
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting connections after shutdown")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The stalled request drains: finish the body, read a 200.
	if _, err := io.WriteString(conn, body[10:]); err != nil {
		t.Fatalf("in-flight connection was cut: %v", err)
	}
	resp, err := http.ReadResponse(bufio.NewReader(conn), nil)
	if err != nil {
		t.Fatalf("in-flight request died during drain: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-flight request status %d", resp.StatusCode)
	}
	resp.Body.Close()

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v, want clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not return after drain")
	}
}

func waitHealthy(t *testing.T, addr string) {
	t.Helper()
	c := serve.NewClient("http://" + addr)
	deadline := time.Now().Add(3 * time.Second)
	for {
		if _, err := c.Stats(); err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("server never became healthy")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
