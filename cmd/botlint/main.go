// Command botlint runs the repo's custom static-analysis suite (see
// internal/analysislint) over every package of the module and reports
// violations of the determinism, lock-discipline, lock-ordering, atomic-
// access, hot-path, compiler-verified escape, wire/JSON protocol-parity
// and error-strictness invariants as `file:line: [rule] message`. Run with
// -rules for the per-rule reference.
//
// Usage:
//
//	go run ./cmd/botlint ./...
//
// The package pattern argument is accepted for familiarity but the tool
// always analyzes the whole module containing the working directory.
// -only restricts reporting and the exit status to a comma-separated rule
// subset (`-only escape` is CI's standalone escape gate). Applied
// suppressions (//botlint:ignore rule -- reason) are listed with their
// reasons. Exit status: 0 clean, 1 unsuppressed findings, 2 the tree
// failed to load or type-check (or the escape gate's compiler run failed).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"botgrid/internal/analysislint"
)

func main() {
	quiet := flag.Bool("q", false, "suppress the applied-suppressions listing")
	rules := flag.Bool("rules", false, "print the rule reference and exit")
	only := flag.String("only", "", "comma-separated rule subset to report and gate on")
	flag.Parse()

	if *rules {
		for _, r := range analysislint.Rules {
			fmt.Printf("%-12s %s\n", r.Name, r.Doc)
		}
		return
	}

	keep, err := ruleFilter(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "botlint:", err)
		os.Exit(2)
	}

	if err := run(*quiet, keep); err != nil {
		fmt.Fprintln(os.Stderr, "botlint:", err)
		os.Exit(2)
	}
}

// ruleFilter parses -only into a keep-set (nil means every rule).
func ruleFilter(only string) (map[string]bool, error) {
	if only == "" {
		return nil, nil
	}
	keep := make(map[string]bool)
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		known := false
		for _, r := range analysislint.Rules {
			if r.Name == name {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("-only names unknown rule %q (see -rules)", name)
		}
		keep[name] = true
	}
	return keep, nil
}

func run(quiet bool, keep map[string]bool) error {
	root, err := analysislint.FindModuleRoot(".")
	if err != nil {
		return err
	}
	m, err := analysislint.LoadModule(root)
	if err != nil {
		return err
	}
	res, err := analysislint.RunAll(m, analysislint.DefaultConfig(m.Path))
	if err != nil {
		return err
	}

	findings := res.Findings
	suppressed := res.Suppressed
	if keep != nil {
		findings = findings[:0:0]
		for _, d := range res.Findings {
			if keep[d.Rule] {
				findings = append(findings, d)
			}
		}
		suppressed = suppressed[:0:0]
		for _, s := range res.Suppressed {
			if keep[s.Rule] {
				suppressed = append(suppressed, s)
			}
		}
	}

	rel := func(name string) string {
		if r, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(r, "..") {
			return r
		}
		return name
	}
	for _, d := range findings {
		fmt.Printf("%s:%d: [%s] %s\n", rel(d.Pos.Filename), d.Pos.Line, d.Rule, d.Msg)
	}
	if !quiet {
		for _, s := range suppressed {
			fmt.Printf("%s:%d: suppressed [%s]: %s\n", rel(s.Pos.Filename), s.Pos.Line, s.Rule, s.Reason)
		}
	}
	fmt.Printf("botlint: %d packages, %d findings, %d suppressed\n",
		len(m.Pkgs), len(findings), len(suppressed))
	if len(findings) > 0 {
		os.Exit(1)
	}
	return nil
}
