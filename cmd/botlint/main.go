// Command botlint runs the repo's custom static-analysis suite (see
// internal/analysislint) over every package of the module and reports
// violations of the determinism, lock-discipline, hot-path and
// error-strictness invariants as `file:line: [rule] message`.
//
// Usage:
//
//	go run ./cmd/botlint ./...
//
// The package pattern argument is accepted for familiarity but the tool
// always analyzes the whole module containing the working directory.
// Applied suppressions (//botlint:ignore rule -- reason) are listed with
// their reasons. Exit status: 0 clean, 1 unsuppressed findings, 2 the tree
// failed to load or type-check.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"botgrid/internal/analysislint"
)

func main() {
	quiet := flag.Bool("q", false, "suppress the applied-suppressions listing")
	rules := flag.Bool("rules", false, "print the rule reference and exit")
	flag.Parse()

	if *rules {
		for _, r := range analysislint.Rules {
			fmt.Printf("%-12s %s\n", r.Name, r.Doc)
		}
		return
	}

	if err := run(*quiet); err != nil {
		fmt.Fprintln(os.Stderr, "botlint:", err)
		os.Exit(2)
	}
}

func run(quiet bool) error {
	root, err := analysislint.FindModuleRoot(".")
	if err != nil {
		return err
	}
	m, err := analysislint.LoadModule(root)
	if err != nil {
		return err
	}
	res := analysislint.Run(m, analysislint.DefaultConfig(m.Path))

	rel := func(name string) string {
		if r, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(r, "..") {
			return r
		}
		return name
	}
	for _, d := range res.Findings {
		fmt.Printf("%s:%d: [%s] %s\n", rel(d.Pos.Filename), d.Pos.Line, d.Rule, d.Msg)
	}
	if !quiet {
		for _, s := range res.Suppressed {
			fmt.Printf("%s:%d: suppressed [%s]: %s\n", rel(s.Pos.Filename), s.Pos.Line, s.Rule, s.Reason)
		}
	}
	fmt.Printf("botlint: %d packages, %d findings, %d suppressed\n",
		len(m.Pkgs), len(res.Findings), len(res.Suppressed))
	if len(res.Findings) > 0 {
		os.Exit(1)
	}
	return nil
}
