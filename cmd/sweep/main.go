// Command sweep regenerates the paper's evaluation: every panel of
// Figures 1 and 2 (plus the MedAvail panels described in prose) and the
// ablation studies listed in DESIGN.md.
//
// Examples:
//
//	sweep -figure F1a                 # one panel at paper scale
//	sweep -figure all -quick          # all panels, 10×-scaled quick mode
//	sweep -ablation threshold         # the A1 replication-threshold sweep
//	sweep -figure F2c -chart          # ASCII bar chart instead of a table
//
// The -cpuprofile, -memprofile and -trace flags capture pprof/trace data
// for the whole sweep, written when the run exits cleanly:
//
//	sweep -figure F1a -quick -cpuprofile cpu.out
//	go tool pprof cpu.out
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"
	"time"

	"botgrid/internal/core"
	"botgrid/internal/experiment"
)

func main() {
	var (
		figureID = flag.String("figure", "", "figure ID (F1a..F2d, FMa..FMd), comma list, or 'all'")
		ablation = flag.String("ablation", "", "ablation study: threshold|dynrep|ckpt|machsel|taskorder|servercap|taskdist|diurnal|suspend|arch|mixed|all")
		quick    = flag.Bool("quick", false, "10×-scaled quick mode (small grid, loose CIs)")
		chart    = flag.Bool("chart", false, "render ASCII bar charts instead of tables")
		format   = flag.String("format", "", "output format: table|chart|csv|json (overrides -chart)")
		svgDir   = flag.String("svg", "", "also write one SVG figure per panel into this directory")
		summary  = flag.Bool("summary", false, "also print per-granularity winners")
		signif   = flag.Bool("significance", false, "also print pairwise Welch t-test matrices")
		outFile  = flag.String("out", "", "save figure results to this JSON file")
		loadFile = flag.String("load", "", "render previously saved results instead of running")
		score    = flag.Bool("scoreboard", false, "also print the cross-figure wins scoreboard")
		seed     = flag.Uint64("seed", 42, "base random seed")
		bots     = flag.Int("bots", 0, "override BoT arrivals per replication")
		warmup   = flag.Int("warmup", -1, "override warmup completions to discard")
		minReps  = flag.Int("minreps", 0, "override minimum replications per cell")
		maxReps  = flag.Int("maxreps", 0, "override maximum replications per cell")
		relErr   = flag.Float64("relerr", 0, "override CI relative-error target")
		scale    = flag.Float64("scale", 0, "override grid/application scale factor (0,1]")
		policies = flag.String("policies", "", "comma list of policies (default: the paper's five)")
		parallel = flag.Int("parallel", 0, "max concurrent simulations (default GOMAXPROCS)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memProf  = flag.String("memprofile", "", "write an allocation profile to this file on clean exit")
		traceOut = flag.String("trace", "", "write a runtime execution trace to this file")
	)
	flag.Parse()

	if *figureID == "" && *ablation == "" && *loadFile == "" {
		fmt.Fprintln(os.Stderr, "sweep: specify -figure, -ablation or -load (see -h)")
		os.Exit(2)
	}

	// Profiling stops (and the files land) only on a clean exit: fatal()
	// paths exit immediately, leaving truncated profiles behind rather
	// than masking the error.
	stopProfiles, err := startProfiles(*cpuProf, *memProf, *traceOut)
	if err != nil {
		fatal(err)
	}
	defer stopProfiles()

	opts := experiment.DefaultOptions(*seed)
	if *quick {
		opts = experiment.QuickOptions(*seed)
	}
	if *bots > 0 {
		opts.NumBoTs = *bots
	}
	if *warmup >= 0 {
		opts.Warmup = *warmup
	}
	if *minReps > 0 {
		opts.MinReps = *minReps
	}
	if *maxReps > 0 {
		opts.MaxReps = *maxReps
	}
	if *relErr > 0 {
		opts.RelErr = *relErr
	}
	if *scale > 0 {
		opts.Scale = *scale
	}
	if *parallel > 0 {
		opts.Parallelism = *parallel
	}
	if *policies != "" {
		opts.Policies = nil
		for _, name := range strings.Split(*policies, ",") {
			k, err := core.ParsePolicy(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			opts.Policies = append(opts.Policies, k)
		}
	}

	outFormat := *format
	if outFormat == "" {
		if *chart {
			outFormat = "chart"
		} else {
			outFormat = "table"
		}
	}
	switch outFormat {
	case "table", "chart", "csv", "json":
	default:
		fatal(fmt.Errorf("unknown format %q (table|chart|csv|json)", outFormat))
	}

	if *loadFile != "" {
		results := loadResults(*loadFile)
		for _, id := range experiment.SortedIDs(results) {
			renderFigure(results[id], outFormat, *summary, *signif, *svgDir)
		}
		if *score {
			printScoreboard(results)
		}
	}
	if *figureID != "" {
		results := runFigures(*figureID, opts, outFormat, *summary, *signif, *svgDir)
		if *outFile != "" {
			saveResults(*outFile, results)
		}
		if *score {
			printScoreboard(results)
		}
	}
	if *ablation != "" {
		runAblations(*ablation, opts)
	}
}

func printScoreboard(results map[string]*experiment.FigureResult) {
	if err := experiment.WriteScoreboard(os.Stdout, experiment.Scoreboard(results)); err != nil {
		fatal(err)
	}
}

func loadResults(path string) map[string]*experiment.FigureResult {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	results, err := experiment.LoadResults(f)
	if err != nil {
		fatal(err)
	}
	return results
}

func saveResults(path string, results map[string]*experiment.FigureResult) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := experiment.SaveResults(f, results); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "saved %d figure results to %s\n", len(results), path)
}

func runFigures(spec string, opts experiment.Options, format string, summary, signif bool, svgDir string) map[string]*experiment.FigureResult {
	var figs []experiment.Figure
	if spec == "all" {
		figs = experiment.Figures
	} else {
		for _, id := range strings.Split(spec, ",") {
			f, err := experiment.FigureByID(strings.TrimSpace(id))
			if err != nil {
				fatal(err)
			}
			figs = append(figs, f)
		}
	}
	// One RunFigures call: every requested panel's cells feed the shared
	// worker pool, so a multi-figure sweep keeps all workers busy end to
	// end instead of draining one figure at a time.
	start := time.Now()
	results, err := experiment.RunFigures(figs, opts)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start).Seconds()
	for _, f := range figs {
		renderFigure(results[f.ID], format, summary, signif, svgDir)
		if format == "table" || format == "chart" {
			fmt.Println()
		}
	}
	if format == "table" || format == "chart" {
		par := opts.Parallelism
		if par <= 0 {
			par = runtime.GOMAXPROCS(0)
		}
		fmt.Printf("(%d figure(s) in %.1fs, parallel=%d)\n\n", len(figs), elapsed, par)
	}
	return results
}

func renderFigure(fr *experiment.FigureResult, format string, summary, signif bool, svgDir string) {
	var err error
	switch format {
	case "chart":
		err = fr.WriteChart(os.Stdout)
	case "csv":
		err = fr.WriteCSV(os.Stdout)
	case "json":
		err = fr.WriteJSON(os.Stdout)
	default:
		err = fr.WriteTable(os.Stdout)
	}
	if err != nil {
		fatal(err)
	}
	if summary {
		if err := fr.WriteSummary(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if signif {
		if err := fr.WriteSignificance(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if svgDir != "" {
		if err := writeSVG(svgDir, fr.Figure.ID, fr); err != nil {
			fatal(err)
		}
	}
}

func writeSVG(dir, id string, fr *experiment.FigureResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, id+".svg")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := fr.WriteSVG(f); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

func runAblations(spec string, opts experiment.Options) {
	type study struct {
		name string
		run  func(experiment.Options) (*experiment.AblationResult, error)
	}
	studies := []study{
		{"threshold", experiment.AblationThreshold},
		{"dynrep", experiment.AblationDynamicReplication},
		{"ckpt", experiment.AblationCheckpointing},
		{"machsel", experiment.AblationMachineSelection},
		{"taskorder", experiment.AblationTaskOrder},
		{"servercap", experiment.AblationServerCapacity},
		{"taskdist", experiment.AblationTaskDistribution},
		{"diurnal", experiment.AblationDiurnal},
		{"suspend", experiment.AblationSuspend},
		{"arch", experiment.AblationArchitecture},
	}
	want := map[string]bool{}
	for _, s := range strings.Split(spec, ",") {
		want[strings.TrimSpace(s)] = true
	}
	ran := false
	for _, s := range studies {
		if !want["all"] && !want[s.name] {
			continue
		}
		ran = true
		ar, err := s.run(opts)
		if err != nil {
			fatal(err)
		}
		if err := ar.WriteTable(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	if want["all"] || want["mixed"] {
		ran = true
		rows, err := experiment.MixedWorkloadStudy(opts)
		if err != nil {
			fatal(err)
		}
		if err := experiment.WriteMixedTable(os.Stdout, opts, rows); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	if !ran {
		fatal(fmt.Errorf("unknown ablation %q (threshold|dynrep|ckpt|machsel|taskorder|servercap|taskdist|diurnal|suspend|arch|mixed|all)", spec))
	}
}

// startProfiles begins the CPU profile and execution trace immediately
// and returns a stop function that finishes them and writes the heap
// profile. Empty paths are skipped; any file that cannot be created is an
// error up front, before hours of sweeping.
func startProfiles(cpuPath, memPath, tracePath string) (func(), error) {
	var stops []func()
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			closeProfile(f, cpuPath)
		})
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return nil, err
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			return nil, err
		}
		stops = append(stops, func() {
			trace.Stop()
			closeProfile(f, tracePath)
		})
	}
	if memPath != "" {
		f, err := os.Create(memPath)
		if err != nil {
			return nil, err
		}
		stops = append(stops, func() {
			runtime.GC() // flush recent frees so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "sweep: writing %s: %v\n", memPath, err)
			}
			closeProfile(f, memPath)
		})
	}
	return func() {
		for _, stop := range stops {
			stop()
		}
	}, nil
}

func closeProfile(f *os.File, path string) {
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "sweep: closing %s: %v\n", path, err)
		return
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
