// Command benchjson converts `go test -bench` output read from stdin into a
// stable JSON document on stdout, so benchmark results can be checked in and
// diffed across commits (see `make bench`, which writes BENCH_sched.json).
//
// The standard columns — iterations, ns/op and (with -benchmem) B/op and
// allocs/op — get dedicated fields; any other "value unit" pair on the
// line (a b.ReportMetric metric such as the replication suite's
// events/sec, or the sweep engine's reps/sec and cpus scaling series)
// lands in the metrics map under its unit name. Environment
// header lines (goos, goarch, cpu, pkg) are carried through verbatim;
// anything else is ignored.
//
// -median collapses repeated lines with the same name (a `go test
// -count=N` run) into one entry holding the per-column medians. Whole-
// simulation benchmarks need this: on a busy host a single run's
// events/sec can swing by tens of percent, and the median of a handful of
// runs is the robust summary worth checking in.
//
// -require-zero-allocs RE makes the run a gate as well as a recorder:
// every benchmark whose name matches RE must report 0 allocs/op, and at
// least one must match, or the exit status is nonzero. `make bench` uses
// it to pin the dispatch decision path — journaled or not — at zero
// allocations.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name with the GOMAXPROCS suffix intact,
	// e.g. "BenchmarkDispatchDecision/manybags/LongIdle-8".
	Name string `json:"name"`
	// Pkg is the import path from the most recent "pkg:" header.
	Pkg string `json:"pkg,omitempty"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// NsPerOp, BytesPerOp and AllocsPerOp mirror the benchmark columns;
	// the memory fields are -1 when -benchmem was not in effect.
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Metrics holds b.ReportMetric values keyed by unit, e.g.
	// "events/sec" for the replication throughput suite.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Samples is how many runs this entry summarizes; >1 only after
	// -median collapses a -count=N series.
	Samples int `json:"samples,omitempty"`
}

// Report is the full document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	zeroAllocs := flag.String("require-zero-allocs", "",
		"regexp of benchmark names that must report 0 allocs/op (at least one must match)")
	median := flag.Bool("median", false,
		"collapse repeated benchmark names (go test -count=N) into per-column medians")
	flag.Parse()
	var zeroRE *regexp.Regexp
	if *zeroAllocs != "" {
		var err error
		if zeroRE, err = regexp.Compile(*zeroAllocs); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: -require-zero-allocs:", err)
			os.Exit(1)
		}
	}

	rep := Report{Benchmarks: []Benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				b.Pkg = pkg
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	if *median {
		rep.Benchmarks = collapseMedians(rep.Benchmarks)
	}
	if zeroRE != nil {
		matched, failed := 0, 0
		for _, b := range rep.Benchmarks {
			if !zeroRE.MatchString(b.Name) {
				continue
			}
			matched++
			if b.AllocsPerOp != 0 {
				failed++
				fmt.Fprintf(os.Stderr, "benchjson: %s (%s): %d allocs/op, want 0\n",
					b.Name, b.Pkg, b.AllocsPerOp)
			}
		}
		if matched == 0 {
			fmt.Fprintf(os.Stderr, "benchjson: no benchmark matched -require-zero-allocs %q\n", *zeroAllocs)
			os.Exit(1)
		}
		if failed > 0 {
			os.Exit(1)
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one result line:
//
//	BenchmarkFoo/sub-8   123456   9.87 ns/op   0 B/op   0 allocs/op
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: f[0], Iterations: iters, BytesPerOp: -1, AllocsPerOp: -1}
	// The remainder alternates value, unit.
	for i := 2; i+1 < len(f); i += 2 {
		switch f[i+1] {
		case "ns/op":
			b.NsPerOp, _ = strconv.ParseFloat(f[i], 64)
		case "B/op":
			b.BytesPerOp, _ = strconv.ParseInt(f[i], 10, 64)
		case "allocs/op":
			b.AllocsPerOp, _ = strconv.ParseInt(f[i], 10, 64)
		default:
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[f[i+1]] = v
		}
	}
	return b, true
}

// collapseMedians merges benchmarks sharing a (pkg, name) into a single
// entry with the median of every numeric column, preserving first-seen
// order. Iterations are summed — the total observations behind the entry.
func collapseMedians(in []Benchmark) []Benchmark {
	type key struct{ pkg, name string }
	order := []key{}
	groups := map[key][]Benchmark{}
	for _, b := range in {
		k := key{b.Pkg, b.Name}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], b)
	}
	out := make([]Benchmark, 0, len(order))
	for _, k := range order {
		g := groups[k]
		m := Benchmark{Name: k.name, Pkg: k.pkg, Samples: len(g)}
		var ns, bytes, allocs []float64
		metrics := map[string][]float64{}
		for _, b := range g {
			m.Iterations += b.Iterations
			ns = append(ns, b.NsPerOp)
			bytes = append(bytes, float64(b.BytesPerOp))
			allocs = append(allocs, float64(b.AllocsPerOp))
			for unit, v := range b.Metrics {
				metrics[unit] = append(metrics[unit], v)
			}
		}
		m.NsPerOp = medianOf(ns)
		m.BytesPerOp = int64(medianOf(bytes))
		m.AllocsPerOp = int64(medianOf(allocs))
		for unit, vs := range metrics {
			if m.Metrics == nil {
				m.Metrics = map[string]float64{}
			}
			m.Metrics[unit] = medianOf(vs)
		}
		out = append(out, m)
	}
	return out
}

// medianOf returns the median (lower-middle for even counts, so the value
// is always one actually observed).
func medianOf(vs []float64) float64 {
	sort.Float64s(vs)
	return vs[(len(vs)-1)/2]
}
