// Command benchjson converts `go test -bench` output read from stdin into a
// stable JSON document on stdout, so benchmark results can be checked in and
// diffed across commits (see `make bench`, which writes BENCH_sched.json).
//
// Only the standard columns are parsed: iterations, ns/op and — with
// -benchmem — B/op and allocs/op. Environment header lines (goos, goarch,
// cpu, pkg) are carried through verbatim; anything else is ignored.
//
// -require-zero-allocs RE makes the run a gate as well as a recorder:
// every benchmark whose name matches RE must report 0 allocs/op, and at
// least one must match, or the exit status is nonzero. `make bench` uses
// it to pin the dispatch decision path — journaled or not — at zero
// allocations.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name with the GOMAXPROCS suffix intact,
	// e.g. "BenchmarkDispatchDecision/manybags/LongIdle-8".
	Name string `json:"name"`
	// Pkg is the import path from the most recent "pkg:" header.
	Pkg string `json:"pkg,omitempty"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// NsPerOp, BytesPerOp and AllocsPerOp mirror the benchmark columns;
	// the memory fields are -1 when -benchmem was not in effect.
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is the full document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	zeroAllocs := flag.String("require-zero-allocs", "",
		"regexp of benchmark names that must report 0 allocs/op (at least one must match)")
	flag.Parse()
	var zeroRE *regexp.Regexp
	if *zeroAllocs != "" {
		var err error
		if zeroRE, err = regexp.Compile(*zeroAllocs); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: -require-zero-allocs:", err)
			os.Exit(1)
		}
	}

	rep := Report{Benchmarks: []Benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				b.Pkg = pkg
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	if zeroRE != nil {
		matched, failed := 0, 0
		for _, b := range rep.Benchmarks {
			if !zeroRE.MatchString(b.Name) {
				continue
			}
			matched++
			if b.AllocsPerOp != 0 {
				failed++
				fmt.Fprintf(os.Stderr, "benchjson: %s (%s): %d allocs/op, want 0\n",
					b.Name, b.Pkg, b.AllocsPerOp)
			}
		}
		if matched == 0 {
			fmt.Fprintf(os.Stderr, "benchjson: no benchmark matched -require-zero-allocs %q\n", *zeroAllocs)
			os.Exit(1)
		}
		if failed > 0 {
			os.Exit(1)
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one result line:
//
//	BenchmarkFoo/sub-8   123456   9.87 ns/op   0 B/op   0 allocs/op
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: f[0], Iterations: iters, BytesPerOp: -1, AllocsPerOp: -1}
	// The remainder alternates value, unit.
	for i := 2; i+1 < len(f); i += 2 {
		switch f[i+1] {
		case "ns/op":
			b.NsPerOp, _ = strconv.ParseFloat(f[i], 64)
		case "B/op":
			b.BytesPerOp, _ = strconv.ParseInt(f[i], 10, 64)
		case "allocs/op":
			b.AllocsPerOp, _ = strconv.ParseInt(f[i], 10, 64)
		}
	}
	return b, true
}
