package botgrid

// The benchmark harness regenerates every table and figure of the paper's
// evaluation, one benchmark per experiment id (see DESIGN.md's experiment
// index). Benchmarks run at the 10×-scaled "quick" configuration so that
// `go test -bench=.` finishes in minutes; the full paper-scale sweep is
// `go run ./cmd/sweep -figure all` (see EXPERIMENTS.md for recorded
// results). Each figure benchmark reports the mean turnaround of the
// fastest policy at the largest granularity as a stable shape indicator.

import (
	"testing"

	"botgrid/internal/experiment"
)

var benchSink any

func benchOptions() Options {
	o := QuickOptions(42)
	o.MinReps, o.MaxReps = 2, 2
	o.NumBoTs = 40
	o.Warmup = 8
	return o
}

func benchFigure(b *testing.B, id string) {
	b.Helper()
	f, err := FigureByID(id)
	if err != nil {
		b.Fatal(err)
	}
	o := benchOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr, err := RunFigure(f, o)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = fr
		if i == 0 {
			top := o.Granularities[len(o.Granularities)-1]
			if winner, ok := fr.Winner(top); ok {
				c, _ := fr.Cell(top, winner)
				b.ReportMetric(c.CI.Mean, "best-turnaround-s")
			}
		}
	}
}

// Figure 1: high-availability configurations.

func BenchmarkFig1a(b *testing.B) { benchFigure(b, "F1a") }
func BenchmarkFig1b(b *testing.B) { benchFigure(b, "F1b") }
func BenchmarkFig1c(b *testing.B) { benchFigure(b, "F1c") }
func BenchmarkFig1d(b *testing.B) { benchFigure(b, "F1d") }

// Figure 2: low-availability configurations.

func BenchmarkFig2a(b *testing.B) { benchFigure(b, "F2a") }
func BenchmarkFig2b(b *testing.B) { benchFigure(b, "F2b") }
func BenchmarkFig2c(b *testing.B) { benchFigure(b, "F2c") }
func BenchmarkFig2d(b *testing.B) { benchFigure(b, "F2d") }

// MedAvail panels (§4.3 prose: "do not significantly differ").

func BenchmarkFigMa(b *testing.B) { benchFigure(b, "FMa") }
func BenchmarkFigMb(b *testing.B) { benchFigure(b, "FMb") }
func BenchmarkFigMc(b *testing.B) { benchFigure(b, "FMc") }
func BenchmarkFigMd(b *testing.B) { benchFigure(b, "FMd") }

// T1: the Desktop Grid configuration table (§4.1).
func BenchmarkTableConfigs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink = experiment.ConfigTable(uint64(i), 1)
	}
}

// T2: the workload / arrival-rate table (§4.2).
func BenchmarkTableWorkloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink = experiment.WorkloadTable(1)
	}
}

// A1: replication-threshold sweep (§3.2's threshold-2 claim).
func BenchmarkAblationThreshold(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		ar, err := experiment.AblationThreshold(o)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = ar
	}
}

// A2: static vs dynamic replication (future work).
func BenchmarkAblationDynRep(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		ar, err := experiment.AblationDynamicReplication(o)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = ar
	}
}

// A3: mixed-granularity workloads (future work).
func BenchmarkAblationMixed(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows, err := experiment.MixedWorkloadStudy(o)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = rows
	}
}

// A4: WQR-FT vs plain WQR (checkpointing off).
func BenchmarkAblationCheckpoint(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		ar, err := experiment.AblationCheckpointing(o)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = ar
	}
}

// A5: knowledge-free vs knowledge-based machine selection.
func BenchmarkAblationMachineSelection(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		ar, err := experiment.AblationMachineSelection(o)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = ar
	}
}

// A6: within-bag task order (knowledge-based coupling, future work).
func BenchmarkAblationTaskOrder(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		ar, err := experiment.AblationTaskOrder(o)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = ar
	}
}

// A7: checkpoint server capacity (contention extension).
func BenchmarkAblationServerCapacity(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		ar, err := experiment.AblationServerCapacity(o)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = ar
	}
}

// A8: task-duration distribution sensitivity.
func BenchmarkAblationTaskDist(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		ar, err := experiment.AblationTaskDistribution(o)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = ar
	}
}

// A9: stationary vs diurnal availability.
func BenchmarkAblationDiurnal(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		ar, err := experiment.AblationDiurnal(o)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = ar
	}
}

// A10: kill-and-resubmit vs suspend-and-resume failure semantics.
func BenchmarkAblationSuspend(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		ar, err := experiment.AblationSuspend(o)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = ar
	}
}

// BenchmarkSingleRun measures raw simulator throughput for one
// paper-scale run (Het-LowAvail, the most event-dense configuration).
func BenchmarkSingleRun(b *testing.B) {
	cfg := NewRunConfig(Het, LowAvail, RR, 25000, 0.5)
	cfg.NumBoTs = 20
	cfg.Warmup = 4
	var events uint64
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		events += res.EventsFired
		benchSink = res
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/run")
}

// A11: centralized vs distributed scheduling architecture.
func BenchmarkAblationArchitecture(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		ar, err := experiment.AblationArchitecture(o)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = ar
	}
}
