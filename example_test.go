package botgrid_test

import (
	"fmt"

	"botgrid"
)

// Simulating one scenario end to end with the public facade.
func ExampleRun() {
	cfg := botgrid.NewRunConfig(botgrid.Hom, botgrid.AlwaysUp, botgrid.FCFSShare,
		1000, botgrid.LowIntensity)
	cfg.NumBoTs = 5
	cfg.Warmup = 0
	res, err := botgrid.Run(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("completed:", res.Completed)
	fmt.Println("saturated:", res.Saturated)
	// Output:
	// completed: 5
	// saturated: false
}

// Replaying an explicit BoT trace gives bit-exact reproducibility across
// scheduler configurations.
func ExampleRunConfig_trace() {
	cfg := botgrid.NewRunConfig(botgrid.Hom, botgrid.AlwaysUp, botgrid.RR, 1000, 0.5)
	cfg.Bots = []*botgrid.BoT{
		{ID: 0, Arrival: 0, Granularity: 1000, TaskWork: []float64{1000, 2000}},
		{ID: 1, Arrival: 10, Granularity: 1000, TaskWork: []float64{500}},
	}
	cfg.Warmup = 0
	res, _ := botgrid.Run(cfg)
	for _, b := range res.Bags {
		fmt.Printf("bag %d turnaround %.0f\n", b.ID, b.Turnaround)
	}
	// Output:
	// bag 1 turnaround 50
	// bag 0 turnaround 200
}

func ExampleParsePolicy() {
	p, _ := botgrid.ParsePolicy("LongIdle")
	fmt.Println(p)
	// Output:
	// LongIdle
}
