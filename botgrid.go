// Package botgrid schedules multiple Bag-of-Tasks (BoT) applications on
// simulated Desktop Grids, reproducing the system and the evaluation of
// Anglano & Canonico, "Scheduling Algorithms for Multiple Bag-of-Task
// Applications on Desktop Grids: a Knowledge-Free Approach" (IPDPS 2008).
//
// The package is a facade over the implementation packages:
//
//   - internal/des: the discrete-event simulation engine
//   - internal/grid: machines, heterogeneity and availability models
//   - internal/checkpoint: checkpoint servers and Young's formula
//   - internal/workload: BoT generation and arrival processes
//   - internal/core: the two-step scheduler (bag selection + WQR-FT)
//   - internal/experiment: the replicated experiment harness
//   - internal/trace and internal/stats: observability and statistics
//
// # Quick start
//
//	cfg := botgrid.NewRunConfig(botgrid.Het, botgrid.LowAvail, botgrid.RR,
//		25000 /* granularity */, 0.5 /* utilization */)
//	cfg.NumBoTs = 50
//	res, err := botgrid.Run(cfg)
//	fmt.Println(res.MeanTurnaround(), err)
//
// To regenerate a paper figure:
//
//	fig, _ := botgrid.FigureByID("F2a")
//	fr, _ := botgrid.RunFigure(fig, botgrid.QuickOptions(42))
//	fr.WriteChart(os.Stdout)
package botgrid

import (
	"io"

	"botgrid/internal/checkpoint"
	"botgrid/internal/core"
	"botgrid/internal/experiment"
	"botgrid/internal/grid"
	"botgrid/internal/multisite"
	"botgrid/internal/rng"
	"botgrid/internal/trace"
	"botgrid/internal/workload"
)

// Core scheduling types.
type (
	// Policy identifies a bag-selection policy.
	Policy = core.PolicyKind
	// RunConfig describes one simulation run.
	RunConfig = core.RunConfig
	// SchedConfig tunes the WQR-FT individual-bag scheduler.
	SchedConfig = core.SchedConfig
	// Result aggregates a run's output.
	Result = core.Result
	// BagStats summarizes one completed bag.
	BagStats = core.BagStats
	// Observer receives scheduling events.
	Observer = core.Observer
)

// Substrate configuration types.
type (
	// GridConfig describes a Desktop Grid configuration.
	GridConfig = grid.Config
	// Heterogeneity selects how machine powers are drawn.
	Heterogeneity = grid.Heterogeneity
	// Availability selects the machine availability level.
	Availability = grid.Availability
	// CheckpointConfig describes the checkpoint subsystem.
	CheckpointConfig = checkpoint.Config
	// WorkloadConfig describes a BoT arrival stream.
	WorkloadConfig = workload.Config
)

// Experiment harness types.
type (
	// Figure identifies one panel of the paper's evaluation.
	Figure = experiment.Figure
	// FigureResult holds the replicated cells of a panel.
	FigureResult = experiment.FigureResult
	// Options tunes the experiment harness.
	Options = experiment.Options
	// Cell is one (granularity, policy) point of a figure.
	Cell = experiment.Cell
	// TraceRecorder captures structured simulation traces; it implements
	// Observer.
	TraceRecorder = trace.Recorder
	// BoT is one Bag-of-Tasks application specification.
	BoT = workload.BoT
	// AvailEvent is one machine availability transition in a replayable
	// trace.
	AvailEvent = grid.AvailEvent
	// TaskOrder is the within-bag dispatch order.
	TaskOrder = core.TaskOrder
)

// The paper's five knowledge-free bag-selection policies plus extensions.
const (
	FCFSExcl  = core.FCFSExcl
	FCFSShare = core.FCFSShare
	RR        = core.RR
	RRNRF     = core.RRNRF
	LongIdle  = core.LongIdle
	Random    = core.Random
	FairShare = core.FairShare
	SJFKB     = core.SJFKB
)

// Grid configuration levels.
const (
	Hom       = grid.Hom
	Het       = grid.Het
	HighAvail = grid.HighAvail
	MedAvail  = grid.MedAvail
	LowAvail  = grid.LowAvail
	AlwaysUp  = grid.AlwaysUp
)

// Within-bag task dispatch orders.
const (
	ArbitraryOrder = core.ArbitraryOrder
	LongestFirst   = core.LongestFirst
	ShortestFirst  = core.ShortestFirst
)

// Workload intensity levels (target utilizations, paper §4.2).
const (
	LowIntensity    = workload.LowIntensity
	MediumIntensity = workload.MediumIntensity
	HighIntensity   = workload.HighIntensity
)

// DefaultGranularities are the four BoT types of the study.
var DefaultGranularities = workload.DefaultGranularities

// PaperPolicies are the five policies the paper evaluates, in figure order.
var PaperPolicies = core.PaperKinds

// AllPolicies includes the extension policies as well.
var AllPolicies = core.Kinds

// Figures lists every evaluation panel (F1a..F2d plus MedAvail checks).
var Figures = experiment.Figures

// Run executes one simulation run. See core.Run.
func Run(cfg RunConfig) (Result, error) { return core.Run(cfg) }

// ParsePolicy maps a policy display name ("FCFS-Share") to its Policy.
func ParsePolicy(name string) (Policy, error) { return core.ParsePolicy(name) }

// DefaultGridConfig returns the paper's grid configuration for the given
// heterogeneity and availability levels.
func DefaultGridConfig(h Heterogeneity, a Availability) GridConfig {
	return grid.DefaultConfig(h, a)
}

// DefaultCheckpointConfig returns the paper's checkpoint parameters.
func DefaultCheckpointConfig() CheckpointConfig { return checkpoint.DefaultConfig() }

// EffectivePower returns the grid power available for useful work under a
// configuration (total power × availability × checkpoint overhead).
func EffectivePower(gc GridConfig, cc CheckpointConfig) float64 {
	return core.EffectivePower(gc, cc)
}

// LambdaForUtilization inverts the paper's Eq. 1 (U = λ·D).
func LambdaForUtilization(util, appSize, effectivePower float64) float64 {
	return workload.LambdaForUtilization(util, appSize, effectivePower)
}

// NewRunConfig assembles a paper-parameterized run: the default grid for
// (h, a), the default application size and spread at the given granularity,
// and the arrival rate hitting the target utilization. Callers adjust the
// returned config (NumBoTs, Warmup, Seed, Sched, ...) before Run.
func NewRunConfig(h Heterogeneity, a Availability, p Policy, granularity, utilization float64) RunConfig {
	gc := grid.DefaultConfig(h, a)
	cc := checkpoint.DefaultConfig()
	return RunConfig{
		Seed: 1,
		Grid: gc,
		Workload: WorkloadConfig{
			Granularities: []float64{granularity},
			AppSize:       workload.DefaultAppSize,
			Spread:        workload.DefaultSpread,
			Lambda:        workload.LambdaForUtilization(utilization, workload.DefaultAppSize, core.EffectivePower(gc, cc)),
		},
		Policy:     p,
		Checkpoint: cc,
		NumBoTs:    100,
		Warmup:     10,
	}
}

// FigureByID finds an evaluation panel by its experiment identifier.
func FigureByID(id string) (Figure, error) { return experiment.FigureByID(id) }

// RunFigure reproduces one evaluation panel.
func RunFigure(f Figure, o Options) (*FigureResult, error) { return experiment.RunFigure(f, o) }

// DefaultOptions returns paper-scale experiment settings.
func DefaultOptions(seed uint64) Options { return experiment.DefaultOptions(seed) }

// QuickOptions returns 10×-scaled-down experiment settings that preserve
// the paper's tasks-per-bag : machines ratios.
func QuickOptions(seed uint64) Options { return experiment.QuickOptions(seed) }

// NewTraceRecorder returns an Observer recording up to max events
// (<=0 means a generous default).
func NewTraceRecorder(max int) *TraceRecorder { return trace.New(max) }

// Distributed-architecture baseline (internal/multisite, experiment A11).
type (
	// DistributedConfig describes a multi-site distributed run.
	DistributedConfig = multisite.Config
	// DistributedResult aggregates a distributed run.
	DistributedResult = multisite.Result
	// Dispatch selects how bags are routed to sites.
	Dispatch = multisite.Dispatch
)

// Site dispatchers for distributed runs.
const (
	RoundRobinSite  = multisite.RoundRobinSite
	RandomSite      = multisite.RandomSite
	LeastLoadedSite = multisite.LeastLoadedSite
)

// RunDistributed executes a multi-site distributed simulation — the
// architecture the paper's related work contrasts with its centralized
// scheduler.
func RunDistributed(cfg DistributedConfig) (DistributedResult, error) {
	return multisite.Run(cfg)
}

// WorkloadGenerator draws BoTs and their Poisson arrival times.
type WorkloadGenerator = workload.Generator

// NewWorkloadGenerator builds a generator whose random streams match what
// Run derives from the same seed: Take(cfg.NumBoTs) reproduces exactly the
// BoT stream a generated run with that seed consumed, which is how traces
// are captured for replay.
func NewWorkloadGenerator(cfg WorkloadConfig, seed uint64) *WorkloadGenerator {
	return workload.NewGenerator(cfg, rng.Root(seed, "tasks"), rng.Root(seed, "arrivals"))
}

// ReadWorkloadTrace parses a JSONL BoT stream; assign the result to
// RunConfig.Bots to replay it.
func ReadWorkloadTrace(r io.Reader) ([]*BoT, error) { return workload.ReadTrace(r) }

// WriteWorkloadTrace serializes a BoT stream as JSON Lines.
func WriteWorkloadTrace(w io.Writer, bots []*BoT) error { return workload.WriteTrace(w, bots) }

// ReadAvailTrace parses a JSONL availability trace; assign the result to
// RunConfig.AvailTrace to replay it.
func ReadAvailTrace(r io.Reader) ([]AvailEvent, error) { return grid.ReadAvailTrace(r) }

// WriteAvailTrace serializes an availability trace as JSON Lines.
func WriteAvailTrace(w io.Writer, events []AvailEvent) error {
	return grid.WriteAvailTrace(w, events)
}
