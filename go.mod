module botgrid

go 1.22
